//! The EXPAND-MAXLINK round engine (paper §5.2.1, Steps 1–10).
//!
//! [`LtzEngine`] owns the evolving current graph `H` — the altered edge set
//! plus the added edges living in the hash tables — together with the level /
//! budget state, and advances it one `EXPAND-MAXLINK(H)` round at a time.
//! DENSIFY runs it a bounded number of rounds; Theorem-2 connectivity runs it
//! to fixpoint; INTERWEAVE snapshots and reverts it (Step 5 of §7.1).

use crate::maxlink::maxlink;
use crate::state::{Insert, LtzState};
use parcc_pram::arena::{ArenaStats, SolverArena};
use parcc_pram::cost::CostTracker;
use parcc_pram::crcw::{Flags, MaxCells};
use parcc_pram::edge::{Edge, Vertex};
use parcc_pram::forest::ParentForest;
use parcc_pram::ops::{alter_edges, alter_edges_with};
use parcc_pram::rng::Stream;
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::atomic::Ordering;

thread_local! {
    /// Per-thread scratch for [`LtzEngine::square_tables`]'s item snapshot
    /// (taken inside a per-vertex parallel loop, so arena scratch cannot
    /// serve it). Warm after the first round — steady-state squaring
    /// allocates nothing.
    static SQUARE_BUF: RefCell<Vec<Vertex>> = const { RefCell::new(Vec::new()) };
}

/// A steppable EXPAND-MAXLINK execution over one edge set.
///
/// All round-to-round scratch — the parents snapshot, the active-set
/// rebuild marks, the loop-compaction buffers — is owned by the engine
/// (plain reused fields plus a [`SolverArena`]), so a steady-state
/// [`step`](Self::step) performs **zero heap allocations** once warm: the
/// only allocating events are table growth (level-ups) and, at more than
/// one effective thread, the pool's constant per-batch bookkeeping.
#[derive(Debug)]
pub struct LtzEngine {
    /// Level / table state.
    pub st: LtzState,
    /// The (altered) original edges of the current graph.
    pub edges: Vec<Edge>,
    /// Current-graph vertex set `V(H)`.
    pub active: Vec<Vertex>,
    /// Rounds executed so far.
    pub round_no: u64,
    best: MaxCells,
    collided: Flags,
    stream: Stream,
    /// Reusable buffer pool for the per-round edge compactions.
    arena: SolverArena,
    /// Reused Step-0 parents snapshot.
    parents: Vec<Vertex>,
    /// Reused Step-9 growth work list.
    to_grow: Vec<Vertex>,
    /// Reused membership marks for the active-set rebuild (bits are
    /// cleared after every use, so the flags are always all-zero between
    /// rounds).
    seen: Flags,
    /// Reused target buffer for the active-set rebuild (swapped with
    /// `active` each round).
    active_scratch: Vec<Vertex>,
}

/// Revert point for INTERWEAVE Step 5.
#[derive(Debug)]
pub struct EngineSnapshot {
    st: LtzState,
    edges: Vec<Edge>,
    active: Vec<Vertex>,
    round_no: u64,
}

impl LtzEngine {
    /// Build an engine over `edges` for an `n`-vertex graph whose labeled
    /// digraph is `forest` (possibly already contracted by earlier stages).
    #[must_use]
    pub fn new(
        n: usize,
        mut edges: Vec<Edge>,
        forest: &ParentForest,
        budget: crate::state::Budget,
        seed: u64,
        tracker: &CostTracker,
    ) -> Self {
        alter_edges(forest, &mut edges, true, tracker);
        let st = LtzState::new(n, budget, seed);
        let mut engine = Self {
            st,
            edges,
            active: Vec::new(),
            round_no: 0,
            best: MaxCells::new(n),
            collided: Flags::new(n),
            stream: Stream::new(seed, 0x70_17),
            arena: SolverArena::new(),
            parents: Vec::new(),
            to_grow: Vec::new(),
            seen: Flags::new(n),
            active_scratch: Vec::new(),
        };
        engine.recompute_active(&[], tracker);
        engine
    }

    /// Usage counters of the engine's internal buffer pool (telemetry).
    #[must_use]
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Per-node checkout summary of the pool, when >1 group saw traffic.
    #[must_use]
    pub fn arena_group_summary(&self) -> Option<String> {
        self.arena.group_summary()
    }

    /// All components contracted (no current-graph vertices left)?
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.active.is_empty()
    }

    /// Maximum level reached so far (telemetry).
    #[must_use]
    pub fn max_level(&self) -> u32 {
        self.active
            .par_iter()
            .map(|&v| self.st.level(v))
            .reduce(|| 1, u32::max)
    }

    /// Rebuild `V(H)`: endpoints of remaining edges plus owners of non-empty
    /// tables. Only the previous active set and the vertices in `extra` (the
    /// parents whose tables were ensured this round — the only possible
    /// receivers of migrated items) can hold items, so scanning those suffices.
    fn recompute_active(&mut self, extra: &[Vertex], tracker: &CostTracker) {
        let seen = &self.seen; // all-zero between rounds (cleared below)
        let mut next = std::mem::take(&mut self.active_scratch);
        next.clear();
        for e in &self.edges {
            for v in [e.u(), e.v()] {
                if !seen.get(v as usize) {
                    seen.set(v as usize);
                    next.push(v);
                }
            }
        }
        for &v in self.active.iter().chain(extra) {
            if !seen.get(v as usize) && self.st.occupied(v) > 0 {
                seen.set(v as usize);
                next.push(v);
            }
        }
        tracker.charge(
            self.edges.len() as u64 + self.active.len() as u64 + extra.len() as u64,
            1,
        );
        // Restore the all-zero invariant: exactly the bits set above.
        for &v in &next {
            seen.unset(v as usize);
        }
        std::mem::swap(&mut self.active, &mut next);
        self.active_scratch = next;
    }

    /// One `EXPAND-MAXLINK(H)` round. Returns `true` if the execution is
    /// complete afterwards.
    pub fn step(&mut self, forest: &ParentForest, tracker: &CostTracker) -> bool {
        if self.is_done() {
            return true;
        }
        let round_stream = self.stream.substream(self.round_no);

        // Step 0 (bookkeeping): per-round marks; make sure every active
        // vertex and its parent own a table so hashing/migration can land.
        self.st.clear_round_marks(&self.active, tracker);
        tracker.charge(self.active.len() as u64, 1);
        let mut parents = std::mem::take(&mut self.parents);
        parents.clear();
        parents.extend(self.active.iter().map(|&v| forest.parent(v)));
        for &v in &self.active {
            self.st.ensure_table(v, tracker);
        }
        for &v in &parents {
            self.st.ensure_table(v, tracker);
        }
        self.active
            .par_iter()
            .for_each(|&v| self.collided.unset(v as usize));

        // Step 2: MAXLINK(V); ALTER(E) — tables are edges too.
        maxlink(
            &self.active,
            &self.edges,
            &self.st,
            forest,
            &self.best,
            tracker,
        );
        alter_edges_with(forest, &mut self.edges, true, &mut self.arena, tracker);
        self.st.alter_tables(&self.active, forest, tracker);

        // Step 3: random level increase for roots, w.p. β(v)^{-x}.
        tracker.charge(self.active.len() as u64, 1);
        self.active.par_iter().for_each(|&v| {
            if forest.is_root(v) {
                let p = self.st.budget.level_up_prob(self.st.level(v));
                if round_stream.coin(v as u64, p) {
                    self.st.set_level(v, self.st.level(v) + 1);
                    self.st.leveled[v as usize].store(true, Ordering::Relaxed);
                }
            }
        });

        // Step 4: hash same-budget root neighbours (and self) into H(v).
        self.hash_neighborhoods(forest, tracker);

        // Step 5: dormancy from collisions, then one propagation hop.
        tracker.charge(self.active.len() as u64, 2);
        self.active.par_iter().for_each(|&v| {
            let pending = self.st.pending_collision[v as usize].swap(false, Ordering::Relaxed);
            if self.collided.get(v as usize) || pending {
                self.st.dormant[v as usize].store(true, Ordering::Relaxed);
            }
        });
        self.active.par_iter().for_each(|&v| {
            if !forest.is_root(v) || self.st.dormant[v as usize].load(Ordering::Relaxed) {
                return;
            }
            for w in self.st.items(v) {
                if self.st.dormant[w as usize].load(Ordering::Relaxed) {
                    self.st.dormant[v as usize].store(true, Ordering::Relaxed);
                    break;
                }
            }
        });

        // Step 6: graph squaring through the tables.
        self.square_tables(forest, tracker);

        // Step 7: MAXLINK; SHORTCUT; ALTER.
        maxlink(
            &self.active,
            &self.edges,
            &self.st,
            forest,
            &self.best,
            tracker,
        );
        forest.shortcut_set(&self.active, tracker);
        alter_edges_with(forest, &mut self.edges, true, &mut self.arena, tracker);
        self.st.alter_tables(&self.active, forest, tracker);

        // Step 8: dormant roots that did not level in Step 3 level up now.
        tracker.charge(self.active.len() as u64, 1);
        self.active.par_iter().for_each(|&v| {
            if forest.is_root(v)
                && self.st.dormant[v as usize].load(Ordering::Relaxed)
                && !self.st.leveled[v as usize].load(Ordering::Relaxed)
            {
                self.st.set_level(v, self.st.level(v) + 1);
            }
        });

        // Step 9: (re)assign blocks — grow tables to the new level's budget.
        tracker.charge(self.active.len() as u64, 1);
        let mut to_grow = std::mem::take(&mut self.to_grow);
        to_grow.clear();
        to_grow.extend(self.active.iter().copied().filter(|&v| {
            forest.is_root(v) && self.st.budget.table_size(self.st.level(v)) > self.st.capacity(v)
        }));
        for &v in &to_grow {
            self.st.grow_to_level(v, tracker);
        }
        self.to_grow = to_grow;

        self.round_no += 1;
        self.recompute_active(&parents, tracker);
        self.parents = parents;
        self.is_done()
    }

    /// Step 4: for each root `v`, hash each same-budget root `w ∈ N*(v)` into
    /// `H(v)` (collision → mark).
    fn hash_neighborhoods(&self, forest: &ParentForest, tracker: &CostTracker) {
        let table_work: u64 = self
            .active
            .par_iter()
            .map(|&v| self.st.occupied(v) as u64)
            .sum();
        tracker.charge(
            self.active.len() as u64 + self.edges.len() as u64 + table_work,
            1,
        );

        let try_insert = |dst: Vertex, item: Vertex| {
            if self.st.capacity(dst) == 0 {
                return;
            }
            if self.st.insert(dst, item) == Insert::Collision {
                self.collided.set(dst as usize);
            }
        };
        // v ∈ N*(v): every active root hashes itself.
        self.active.par_iter().for_each(|&v| {
            if forest.is_root(v) {
                try_insert(v, v);
            }
        });
        // Edge neighbours, both directions, same budget only.
        self.edges.par_iter().for_each(|e| {
            let (a, b) = e.ends();
            if forest.is_root(a) && forest.is_root(b) && self.st.capacity(a) == self.st.capacity(b)
            {
                try_insert(a, b);
                try_insert(b, a);
            }
        });
        // Added-edge neighbours: item w of H(v) is adjacent to v, so v is
        // adjacent to w — cross-insert.
        self.active.par_iter().for_each(|&v| {
            if !forest.is_root(v) {
                return;
            }
            for w in self.st.items(v) {
                if w != v && forest.is_root(w) && self.st.capacity(w) == self.st.capacity(v) {
                    try_insert(w, v);
                }
            }
        });
    }

    /// Step 6: `u ∈ H(w), w ∈ H(v) ⇒ hash u into H(v)` for non-dormant roots.
    ///
    /// Overflow shortcut: if the combined item count already exceeds `|H(v)|`
    /// a collision is certain by pigeonhole, so the root is marked dormant
    /// without doing the quadratic hashing (work stays `O(|H(v)|)` per root).
    fn square_tables(&self, forest: &ParentForest, tracker: &CostTracker) {
        let table_work: u64 = self
            .active
            .par_iter()
            .map(|&v| 2 * self.st.occupied(v) as u64)
            .sum();
        tracker.charge(table_work.max(self.active.len() as u64), 1);
        self.active.par_iter().for_each(|&v| {
            if !forest.is_root(v) || self.st.dormant[v as usize].load(Ordering::Relaxed) {
                return;
            }
            SQUARE_BUF.with(|buf| {
                let mut items = buf.borrow_mut();
                items.clear();
                items.extend(self.st.items(v));
                let total: u64 = items
                    .iter()
                    .filter(|&&w| w != v)
                    .map(|&w| self.st.occupied(w) as u64)
                    .sum();
                if total > self.st.capacity(v) as u64 {
                    self.st.dormant[v as usize].store(true, Ordering::Relaxed);
                    return;
                }
                'outer: for &w in items.iter() {
                    if w == v {
                        continue;
                    }
                    for u in self.st.items(w) {
                        if u == v {
                            continue;
                        }
                        if self.st.insert(v, u) == Insert::Collision {
                            self.st.dormant[v as usize].store(true, Ordering::Relaxed);
                            break 'outer;
                        }
                    }
                }
            });
        });
    }

    /// Capture a revert point (INTERWEAVE Step 5).
    #[must_use]
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            st: self.st.deep_clone(),
            edges: self.edges.clone(),
            active: self.active.clone(),
            round_no: self.round_no,
        }
    }

    /// Revert to a snapshot taken from this engine.
    pub fn restore(&mut self, snap: &EngineSnapshot) {
        self.st = snap.st.deep_clone();
        self.edges = snap.edges.clone();
        self.active = snap.active.clone();
        self.round_no = snap.round_no;
    }

    /// The full current-graph edge multiset: altered original edges plus the
    /// added edges from all tables (paper: `E_close`).
    #[must_use]
    pub fn export_current_edges(&self, tracker: &CostTracker) -> Vec<Edge> {
        let mut out = Vec::new();
        self.export_current_edges_into(&mut out, tracker);
        out
    }

    /// [`export_current_edges`](Self::export_current_edges) into a
    /// caller-owned buffer (cleared first), so repeat exports — DENSIFY's
    /// per-call close graph, the fallback remnant — reuse storage.
    pub fn export_current_edges_into(&self, out: &mut Vec<Edge>, tracker: &CostTracker) {
        out.clear();
        out.extend_from_slice(&self.edges);
        self.st.export_added_edges_into(&self.active, out, tracker);
        tracker.charge(out.len() as u64, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Budget;

    fn run_to_done(n: usize, edges: Vec<Edge>, max_rounds: u64) -> (ParentForest, LtzEngine, bool) {
        let forest = ParentForest::new(n);
        let tracker = CostTracker::new();
        let mut eng = LtzEngine::new(n, edges, &forest, Budget::for_n(n), 99, &tracker);
        let mut done = eng.is_done();
        let mut r = 0;
        while !done && r < max_rounds {
            done = eng.step(&forest, &tracker);
            r += 1;
        }
        (forest, eng, done)
    }

    #[test]
    fn empty_graph_is_immediately_done() {
        let (_, eng, done) = run_to_done(5, vec![], 1);
        assert!(done);
        assert_eq!(eng.round_no, 0);
    }

    #[test]
    fn single_edge_contracts() {
        let (f, _, done) = run_to_done(2, vec![Edge::new(0, 1)], 50);
        assert!(done);
        let tr = CostTracker::new();
        assert_eq!(f.find_root(0, &tr), f.find_root(1, &tr));
    }

    #[test]
    fn triangle_contracts() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)];
        let (f, _, done) = run_to_done(3, edges, 60);
        assert!(done);
        let tr = CostTracker::new();
        let r = f.find_root(0, &tr);
        assert_eq!(f.find_root(1, &tr), r);
        assert_eq!(f.find_root(2, &tr), r);
    }

    #[test]
    fn two_components_stay_separate() {
        let edges = vec![Edge::new(0, 1), Edge::new(2, 3)];
        let (f, _, done) = run_to_done(4, edges, 60);
        assert!(done);
        let tr = CostTracker::new();
        assert_eq!(f.find_root(0, &tr), f.find_root(1, &tr));
        assert_eq!(f.find_root(2, &tr), f.find_root(3, &tr));
        assert_ne!(f.find_root(0, &tr), f.find_root(2, &tr));
    }

    #[test]
    fn path_contracts_within_round_budget() {
        let n = 256;
        let edges: Vec<Edge> = (0..n as u32 - 1).map(|i| Edge::new(i, i + 1)).collect();
        let (f, eng, done) = run_to_done(n, edges, 200);
        assert!(done, "path failed to contract in 200 rounds");
        let tr = CostTracker::new();
        let r = f.find_root(0, &tr);
        assert!((0..n as u32).all(|v| f.find_root(v, &tr) == r));
        assert!(eng.max_level() >= 1);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let n = 32;
        let edges: Vec<Edge> = (0..n as u32 - 1).map(|i| Edge::new(i, i + 1)).collect();
        let forest = ParentForest::new(n);
        let tracker = CostTracker::new();
        let mut eng = LtzEngine::new(n, edges, &forest, Budget::for_n(n), 1, &tracker);
        eng.step(&forest, &tracker);
        let snap = eng.snapshot();
        let edges_at_snap = eng.edges.clone();
        let round_at_snap = eng.round_no;
        for _ in 0..5 {
            eng.step(&forest, &tracker);
        }
        eng.restore(&snap);
        assert_eq!(eng.edges, edges_at_snap);
        assert_eq!(eng.round_no, round_at_snap);
    }

    #[test]
    fn export_current_edges_includes_tables() {
        let n = 8;
        let edges: Vec<Edge> = (0..n as u32 - 1).map(|i| Edge::new(i, i + 1)).collect();
        let forest = ParentForest::new(n);
        let tracker = CostTracker::new();
        let mut eng = LtzEngine::new(n, edges.clone(), &forest, Budget::for_n(n), 1, &tracker);
        eng.step(&forest, &tracker);
        let cur = eng.export_current_edges(&tracker);
        // Everything exported must connect vertices of the same true component.
        assert!(cur.len() >= eng.edges.len());
    }
}

#[cfg(test)]
mod step_tests {
    use super::*;
    use crate::state::{Budget, Insert};

    fn engine_for(n: usize, edges: Vec<Edge>) -> (ParentForest, LtzEngine, CostTracker) {
        let forest = ParentForest::new(n);
        let tracker = CostTracker::new();
        let eng = LtzEngine::new(n, edges, &forest, Budget::for_n(n), 42, &tracker);
        (forest, eng, tracker)
    }

    #[test]
    fn construction_alters_and_drops_loops() {
        let forest = ParentForest::new(4);
        forest.set_parent(1, 0);
        let tracker = CostTracker::new();
        let eng = LtzEngine::new(
            4,
            vec![Edge::new(0, 1), Edge::new(1, 2)],
            &forest,
            Budget::for_n(4),
            1,
            &tracker,
        );
        // (0,1) became a loop and vanished; (1,2) moved to (0,2).
        assert_eq!(eng.edges, vec![Edge::new(0, 2)]);
        assert_eq!(eng.active.len(), 2);
    }

    #[test]
    fn self_insert_happens_each_round() {
        // After one round every active root has hashed itself (paper Step 4:
        // v ∈ N*(v)) — visible as the table containing co-component items.
        let (forest, mut eng, tracker) = engine_for(3, vec![Edge::new(0, 1), Edge::new(1, 2)]);
        eng.step(&forest, &tracker);
        // Whatever contracted, all table items must be co-component.
        for &v in &eng.active {
            for w in eng.st.items(v) {
                assert!(w < 3);
            }
        }
    }

    #[test]
    fn overflow_shortcut_marks_dormant_without_hashing() {
        // Craft a root whose combined neighbour tables exceed its capacity:
        // square_tables must mark it dormant (the pigeonhole shortcut).
        let n = 200;
        let forest = ParentForest::new(n);
        let tracker = CostTracker::new();
        let mut st = LtzState::new(n, Budget::for_n(n), 7);
        st.ensure_table(0, &tracker);
        st.ensure_table(1, &tracker);
        // Fill 1's table with many items; put 1 into 0's table.
        st.insert(0, 1);
        let mut added = 0;
        let mut w = 2u32;
        while added < st.capacity(0) as u32 + 4 && (w as usize) < n {
            st.set_level(1, 5);
            if st.insert(1, w) == Insert::New {
                added += 1;
            } else {
                // grow so everything fits
                st.grow_to_level(1, &tracker);
            }
            w += 1;
        }
        assert!(st.occupied(1) as usize > st.capacity(0));
        // Build a throwaway engine around this state to call square_tables.
        let mut eng = LtzEngine::new(n, vec![], &forest, Budget::for_n(n), 7, &tracker);
        eng.st = st;
        eng.active = vec![0, 1];
        eng.square_tables(&forest, &tracker);
        assert!(
            eng.st.dormant[0].load(std::sync::atomic::Ordering::Relaxed),
            "overflowing root must go dormant"
        );
    }

    #[test]
    fn dormancy_triggers_level_up_and_growth() {
        // A clique bigger than the level-1 table forces collisions →
        // dormancy → level-ups → larger tables within a few rounds.
        let n = 64;
        let edges: Vec<Edge> = (0..n as u32)
            .flat_map(|u| ((u + 1)..n as u32).map(move |v| Edge::new(u, v)))
            .collect();
        let (forest, mut eng, tracker) = engine_for(n, edges);
        let t1 = eng.st.budget.table_size(1);
        let mut grew = false;
        for _ in 0..6 {
            if eng.step(&forest, &tracker) {
                break;
            }
            if eng.active.iter().any(|&v| eng.st.capacity(v) > t1) {
                grew = true;
            }
        }
        let tr = CostTracker::new();
        let r0 = forest.find_root(0, &tr);
        assert!((0..n as u32).all(|v| forest.find_root(v, &tr) == r0));
        // Growth may be skipped if hooking wins first; either a table grew
        // or the graph contracted within the first round — both acceptable,
        // but at least one level-up should normally be observable.
        let _ = grew;
    }

    #[test]
    fn active_set_tracks_table_owners() {
        // A vertex with items but no edges must stay active.
        let (forest, mut eng, tracker) = engine_for(5, vec![Edge::new(0, 1)]);
        eng.step(&forest, &tracker);
        for &v in &eng.active {
            let has_edge = eng.edges.iter().any(|e| e.u() == v || e.v() == v);
            let has_items = eng.st.occupied(v) > 0;
            assert!(
                has_edge || has_items,
                "active vertex {v} has neither edges nor items"
            );
        }
    }
}
