//! MAXLINK (paper §5.2.1): hook every vertex to the highest-level parent in
//! its closed neighbourhood.
//!
//! `MAXLINK(V)`: repeat twice — for each `v ∈ V`, let
//! `u = argmax_{w ∈ N*(v).p} ℓ(w)`; if `ℓ(u) > ℓ(v)` then `v.p = u`.
//!
//! The arg-max over concurrent neighbours is a priority write, realized with
//! [`MaxCells`] over packed `(level, vertex)` words.
//!
//! **Practical deviation (documented in DESIGN.md §2):** hooking happens on a
//! strictly larger `(level, id)` *pair*, not a strictly larger level alone.
//! With the paper's huge `β₁ = (log n)^80` budgets, random level-ups break
//! level symmetry instantly; at practical budgets a level-symmetric graph
//! (e.g. a path where every vertex goes dormant and levels up in lock-step)
//! would stall for many rounds waiting for a coin flip. Lexicographic hooking
//! is the standard LTZ-style tie-break: `(ℓ(x), x)` strictly increases along
//! every parent chain (levels are monotone and only roots level up), so the
//! labeled digraph stays acyclic for *any* CRCW write resolution.

use crate::state::LtzState;
use parcc_pram::cost::CostTracker;
use parcc_pram::crcw::MaxCells;
use parcc_pram::edge::{Edge, Vertex};
use parcc_pram::forest::ParentForest;
use rayon::prelude::*;

/// One MAXLINK iteration over the active vertex set.
///
/// Neighbourhoods are the current-graph adjacency: original (altered) edges
/// plus the added edges stored in the hash tables. Charges
/// `(|active| + |E| + Σ table sizes, 1)`.
pub fn maxlink_iteration(
    active: &[Vertex],
    edges: &[Edge],
    st: &LtzState,
    forest: &ParentForest,
    best: &MaxCells,
    tracker: &CostTracker,
) {
    let table_work: u64 = active.par_iter().map(|&v| st.occupied(v) as u64).sum();
    tracker.charge(active.len() as u64 * 2 + edges.len() as u64 + table_work, 1);

    // Clear scratch cells for the active set only.
    active.par_iter().for_each(|&v| best.clear(v as usize));

    // N*(v) contains v itself.
    active.par_iter().for_each(|&v| {
        let p = forest.parent(v);
        best.offer(v as usize, st.level(p), p);
    });
    // Original (altered) edges contribute in both directions.
    edges.par_iter().for_each(|e| {
        let (a, b) = e.ends();
        let pb = forest.parent(b);
        best.offer(a as usize, st.level(pb), pb);
        let pa = forest.parent(a);
        best.offer(b as usize, st.level(pa), pa);
    });
    // Added edges (v, w ∈ H(v)) contribute in both directions.
    active.par_iter().for_each(|&v| {
        let pv = forest.parent(v);
        let lv = st.level(pv);
        for w in st.items(v) {
            let pw = forest.parent(w);
            best.offer(v as usize, st.level(pw), pw);
            best.offer(w as usize, lv, pv);
        }
    });

    // Apply: hook strictly upward in (level, id).
    active.par_iter().for_each(|&v| {
        let (lvl, u) = best.best(v as usize);
        let lv = st.level(v);
        if lvl > lv || (lvl == lv && u > v) {
            forest.set_parent(v, u);
        }
    });
}

/// `MAXLINK(V)`: two iterations (paper pseudocode).
pub fn maxlink(
    active: &[Vertex],
    edges: &[Edge],
    st: &LtzState,
    forest: &ParentForest,
    best: &MaxCells,
    tracker: &CostTracker,
) {
    for _ in 0..2 {
        maxlink_iteration(active, edges, st, forest, best, tracker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Budget;

    fn setup(n: usize) -> (ParentForest, LtzState, MaxCells, CostTracker) {
        (
            ParentForest::new(n),
            LtzState::new(n, Budget::for_n(n), 7),
            MaxCells::new(n),
            CostTracker::new(),
        )
    }

    #[test]
    fn equal_levels_hook_by_id() {
        let (f, st, best, tr) = setup(3);
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2)];
        maxlink(&[0, 1, 2], &edges, &st, &f, &best, &tr);
        // Ties break towards larger ids: 2 absorbs the chain.
        assert!(f.is_root(2));
        assert_eq!(f.parent(1), 2);
        let _ = f.max_height(); // acyclic
    }

    #[test]
    fn hooks_to_higher_level_neighbor() {
        let (f, st, best, tr) = setup(3);
        st.set_level(2, 3);
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2)];
        maxlink(&[0, 1, 2], &edges, &st, &f, &best, &tr);
        assert_eq!(f.parent(1), 2);
        // Second iteration lets 0 see 1's new parent (level 3) via N*(0).p.
        assert_eq!(f.parent(0), 2);
        assert!(f.is_root(2));
    }

    #[test]
    fn picks_maximum_level_among_neighbors() {
        let (f, st, best, tr) = setup(4);
        st.set_level(2, 2);
        st.set_level(3, 5);
        let edges = vec![Edge::new(0, 2), Edge::new(0, 3)];
        maxlink_iteration(&[0, 2, 3], &edges, &st, &f, &best, &tr);
        assert_eq!(f.parent(0), 3);
    }

    #[test]
    fn added_edges_contribute() {
        let (f, mut st, best, tr) = setup(3);
        st.ensure_table(0, &tr);
        st.insert(0, 2);
        st.set_level(2, 4);
        maxlink_iteration(&[0, 2], &[], &st, &f, &best, &tr);
        assert_eq!(f.parent(0), 2);
    }

    #[test]
    fn added_edges_contribute_reverse_direction() {
        let (f, mut st, best, tr) = setup(3);
        st.ensure_table(0, &tr);
        st.insert(0, 2);
        st.set_level(0, 4);
        maxlink_iteration(&[0, 2], &[], &st, &f, &best, &tr);
        assert_eq!(f.parent(2), 0);
    }

    #[test]
    fn level_invariant_preserved() {
        let (f, st, best, tr) = setup(6);
        for v in 0..6 {
            st.set_level(v, 1 + (v % 3));
        }
        let edges: Vec<Edge> = (0..5).map(|i| Edge::new(i, i + 1)).collect();
        for _ in 0..4 {
            maxlink(&[0, 1, 2, 3, 4, 5], &edges, &st, &f, &best, &tr);
        }
        for v in 0..6u32 {
            if !f.is_root(v) {
                let p = f.parent(v);
                let up = (st.level(p), p) > (st.level(v), v);
                assert!(up, "lexicographic invariant broken at {v}");
            }
        }
        let _ = f.max_height(); // panics on cycles
    }
}
