//! Theorem-2 connectivity: iterate EXPAND-MAXLINK to fixpoint.
//!
//! The paper uses `[LTZ20]` as a black box: "There is an ARBITRARY CRCW PRAM
//! algorithm using O(m + n) processors that computes the connected components
//! of any given graph ... in O(log d + log log n) time" (Theorem 2). Here the
//! black box is [`ltz_connectivity`]; the round budget defaults to a generous
//! multiple of `log n` and, should it ever be exhausted (the theorem says it
//! will not be, w.h.p.), the deterministic fallback finishes the contraction
//! so the library is unconditionally correct (DESIGN.md §5).

use crate::round::LtzEngine;
use crate::state::Budget;
use parcc_pram::cost::{ceil_log2, CostTracker};
use parcc_pram::edge::Edge;
use parcc_pram::forest::ParentForest;
use parcc_pram::ops::deterministic_cc_fallback;

/// Tuning for a Theorem-2 run.
#[derive(Debug, Clone, Copy)]
pub struct LtzParams {
    /// Table budget schedule.
    pub budget: Budget,
    /// Hard round cap before the deterministic fallback engages.
    pub max_rounds: u64,
    /// Master seed.
    pub seed: u64,
}

impl LtzParams {
    /// Defaults for an `n`-vertex graph: cap `8·log2 n + 48` rounds.
    #[must_use]
    pub fn for_n(n: usize) -> Self {
        LtzParams {
            budget: Budget::for_n(n),
            max_rounds: 8 * ceil_log2(n.max(2) as u64) + 48,
            seed: 0xC0FFEE,
        }
    }

    /// Same parameters with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Telemetry from a Theorem-2 run.
#[derive(Debug, Clone, Default)]
pub struct LtzStats {
    /// EXPAND-MAXLINK rounds executed.
    pub rounds: u64,
    /// Did the round cap trip and the deterministic fallback engage?
    pub fallback_engaged: bool,
    /// Hook rounds the fallback needed (its initial flatten+alter may finish
    /// the job in 0 hook rounds).
    pub fallback_rounds: u64,
    /// Highest level any vertex reached.
    pub max_level: u32,
    /// Total hash-table slots allocated.
    pub table_slots: u64,
    /// High-water bytes retained by the engine's reusable buffer pool.
    pub arena_peak_bytes: u64,
    /// Per-node pool checkout summary (`n0:t=..,m=..|n1:..`) when more
    /// than one topology group served checkouts.
    pub arena_groups: Option<String>,
}

/// Compute connected components of the graph `(forest's vertex set, edges)`,
/// contracting into `forest` (which may already carry contractions from
/// earlier stages — the edge set is altered first).
///
/// On return every component spanned by `edges` is contracted into a single
/// tree of the labeled digraph (not necessarily flat; callers needing labels
/// run `forest.flatten`).
pub fn ltz_connectivity(
    edges: Vec<Edge>,
    forest: &ParentForest,
    params: LtzParams,
    tracker: &CostTracker,
) -> LtzStats {
    let n = forest.len();
    let mut engine = LtzEngine::new(n, edges, forest, params.budget, params.seed, tracker);
    let mut stats = LtzStats::default();
    while !engine.is_done() && stats.rounds < params.max_rounds {
        stats.max_level = stats.max_level.max(engine.max_level());
        engine.step(forest, tracker);
        stats.rounds += 1;
    }
    stats.max_level = stats.max_level.max(1);
    stats.table_slots = engine.st.slots_allocated();
    stats.arena_peak_bytes = engine.arena_stats().peak_bytes;
    stats.arena_groups = engine.arena_group_summary();
    if !engine.is_done() {
        // Safety net: contract whatever is left, deterministically.
        stats.fallback_engaged = true;
        let mut remaining = engine.export_current_edges(tracker);
        stats.fallback_rounds = deterministic_cc_fallback(forest, &mut remaining, tracker);
    }
    stats
}

/// Bounded Theorem-2 run *without* the fallback: iterate EXPAND-MAXLINK for
/// at most `max_rounds` rounds and report whether every component spanned by
/// `edges` finished contracting. Used by DENSIFY ("run 104 log log n rounds
/// of the algorithm in Theorem 2", §5.2.1) and by INTERWEAVE's per-phase
/// attempt (§7.1 Step 3), where *not* finishing is an expected outcome that
/// signals a wrong gap guess.
pub fn ltz_bounded(
    edges: Vec<Edge>,
    forest: &ParentForest,
    budget: crate::state::Budget,
    max_rounds: u64,
    seed: u64,
    tracker: &CostTracker,
) -> (bool, u64) {
    let n = forest.len();
    let mut engine = LtzEngine::new(n, edges, forest, budget, seed, tracker);
    let mut rounds = 0;
    while !engine.is_done() && rounds < max_rounds {
        engine.step(forest, tracker);
        rounds += 1;
    }
    (engine.is_done(), rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcc_graph::generators as gen;
    use parcc_graph::traverse::{components, same_partition};
    use parcc_graph::Graph;

    fn check_graph(g: &Graph, seed: u64) -> LtzStats {
        let forest = ParentForest::new(g.n());
        let tracker = CostTracker::new();
        let stats = ltz_connectivity(
            g.edges().to_vec(),
            &forest,
            LtzParams::for_n(g.n()).with_seed(seed),
            &tracker,
        );
        forest.flatten(&tracker);
        let ours = forest.labels(&tracker);
        let truth = components(g);
        assert!(
            same_partition(&ours, &truth),
            "wrong partition on n={} m={}",
            g.n(),
            g.m()
        );
        stats
    }

    #[test]
    fn correct_on_standard_families() {
        for (g, seed) in [
            (gen::path(200), 1u64),
            (gen::cycle(128), 2),
            (gen::complete(40), 3),
            (gen::star(100), 4),
            (gen::binary_tree(255), 5),
            (gen::grid2d(16, 16, false), 6),
            (gen::hypercube(7), 7),
        ] {
            let stats = check_graph(&g, seed);
            assert!(!stats.fallback_engaged, "fallback should not engage");
        }
    }

    #[test]
    fn correct_on_random_graphs() {
        for seed in 0..4u64 {
            check_graph(&gen::gnp(400, 0.02, seed), seed);
            check_graph(&gen::random_regular(300, 4, seed), seed + 10);
        }
    }

    #[test]
    fn correct_on_disconnected_and_messy() {
        check_graph(&gen::expander_union(4, 100, 4, 3), 1);
        check_graph(&gen::mixture(9), 2);
        check_graph(&gen::with_isolated(&gen::cycle(50), 20), 3);
    }

    #[test]
    fn correct_with_loops_and_parallel_edges() {
        let g = Graph::from_pairs(
            6,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 2),
                (3, 4),
                (4, 3),
                (4, 3),
            ],
        );
        check_graph(&g, 11);
    }

    #[test]
    fn empty_and_singleton() {
        check_graph(&Graph::new(0, vec![]), 1);
        check_graph(&Graph::new(5, vec![]), 1);
    }

    #[test]
    fn rounds_scale_with_diameter() {
        // The log d term: round count grows with path length but stays flat
        // on expanders of the same size.
        let sp_small = check_graph(&gen::path(256), 1);
        let sp_large = check_graph(&gen::path(16384), 1);
        assert!(
            sp_large.rounds >= sp_small.rounds + 2,
            "path rounds should grow with diameter: {} vs {}",
            sp_small.rounds,
            sp_large.rounds
        );
        let se = check_graph(&gen::random_regular(16384, 8, 5), 1);
        assert!(
            se.rounds < sp_large.rounds,
            "expander rounds {} should undercut path rounds {}",
            se.rounds,
            sp_large.rounds
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gen::gnp(300, 0.02, 7);
        let s1 = check_graph(&g, 42);
        let s2 = check_graph(&g, 42);
        assert_eq!(s1.rounds, s2.rounds);
        assert_eq!(s1.table_slots, s2.table_slots);
    }

    #[test]
    fn works_on_precontracted_forest() {
        // Simulate a stage-1 contraction: 0←1, 2←3 already merged.
        let forest = ParentForest::new(6);
        forest.set_parent(1, 0);
        forest.set_parent(3, 2);
        let edges = vec![Edge::new(1, 3), Edge::new(4, 5)];
        let tracker = CostTracker::new();
        ltz_connectivity(edges, &forest, LtzParams::for_n(6), &tracker);
        forest.flatten(&tracker);
        let tr = CostTracker::new();
        assert_eq!(forest.find_root(0, &tr), forest.find_root(2, &tr));
        assert_eq!(forest.find_root(4, &tr), forest.find_root(5, &tr));
        assert_ne!(forest.find_root(0, &tr), forest.find_root(4, &tr));
    }

    #[test]
    fn forced_fallback_still_correct() {
        let g = gen::path(3000);
        let forest = ParentForest::new(g.n());
        let tracker = CostTracker::new();
        let mut params = LtzParams::for_n(g.n());
        params.max_rounds = 1; // guarantee the cap trips
        let stats = ltz_connectivity(g.edges().to_vec(), &forest, params, &tracker);
        assert!(stats.fallback_engaged, "fallback must have engaged");
        forest.flatten(&tracker);
        assert!(same_partition(&forest.labels(&tracker), &components(&g)));
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use parcc_graph::generators as gen;

    #[test]
    #[ignore]
    fn probe_round_scaling() {
        for k in [8usize, 10, 12, 14, 16] {
            let n = 1 << k;
            let g = gen::path(n);
            let forest = ParentForest::new(n);
            let tracker = CostTracker::new();
            let s = ltz_connectivity(g.edges().to_vec(), &forest, LtzParams::for_n(n), &tracker);
            let ge = gen::random_regular(n, 8, 5);
            let fe = ParentForest::new(n);
            let te = CostTracker::new();
            let se = ltz_connectivity(ge.edges().to_vec(), &fe, LtzParams::for_n(n), &te);
            println!("n=2^{k}: path rounds={} depth={} work/m={:.1} | expander rounds={} depth={} work/m={:.1}",
                s.rounds, tracker.depth(), tracker.work() as f64 / g.m() as f64,
                se.rounds, te.depth(), te.work() as f64 / ge.m() as f64);
        }
    }
}
