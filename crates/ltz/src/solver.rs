//! [`ComponentSolver`] adapter for the Theorem-2 (LTZ) substrate, so the
//! registry can run it standalone against the paper's pipeline and the
//! classical baselines.

use crate::connect::{ltz_connectivity, LtzParams};
use parcc_graph::incremental::BatchedUpdate;
use parcc_graph::solver::{ComponentSolver, SolveCtx, SolveReport, SolverCaps};
use parcc_graph::store::{concat_edges, GraphStore};
use parcc_graph::Graph;
use parcc_pram::edge::Edge;
use parcc_pram::forest::ParentForest;

/// Liu–Tarjan–Zhong (`[LTZ20]`, the paper's Theorem 2): `O(log d + log log
/// n)` time with `O(m + n)` processors, run standalone on the raw input.
pub struct LtzSolver;

impl LtzSolver {
    /// The shared run: the engine takes ownership of a working edge
    /// vector, so both entries hand it one (the store entry assembles it
    /// straight from the shard slices, never building a flat [`Graph`]).
    ///
    /// The input multiset is simplified first (canonicalize, padded sort,
    /// adjacent dedup): EXPAND-MAXLINK charges `O(|E|)` per round, so
    /// paying one sort up front to make every round scan *distinct* edges
    /// only is the Liu–Tarjan engineering trade — and on already-simple
    /// inputs the sort is the only cost. The sort rides the `PARCC_SORT`
    /// backend, so the radix/cmp comparison (E16) covers this pipeline.
    fn run(&self, n: usize, edges: Vec<Edge>, ctx: &SolveCtx) -> SolveReport {
        let mut note_fallback = false;
        let mut note_level = 0;
        let mut note_dedup = 0usize;
        let mut note_arena_peak = 0u64;
        let mut note_arena_groups = None;
        let report = SolveReport::measure(ctx, |tracker| {
            let forest = ParentForest::new(n);
            let simplified = parcc_pram::primitives::simplify_edges(&edges, true, tracker);
            note_dedup = edges.len() - simplified.len();
            let stats = ltz_connectivity(
                simplified,
                &forest,
                LtzParams::for_n(n).with_seed(ctx.seed),
                tracker,
            );
            forest.flatten(tracker);
            note_fallback = stats.fallback_engaged;
            note_level = stats.max_level;
            note_arena_peak = stats.arena_peak_bytes;
            note_arena_groups = stats.arena_groups.clone();
            (forest.labels(tracker), Some(stats.rounds))
        });
        let report = report
            .note("fallback", note_fallback)
            .note("max_level", note_level)
            .note("dedup_removed", note_dedup)
            .note("arena_peak_bytes", note_arena_peak);
        match note_arena_groups {
            Some(g) => report.note("arena_nodes", g),
            None => report,
        }
    }
}

impl ComponentSolver for LtzSolver {
    fn name(&self) -> &'static str {
        "ltz"
    }
    fn description(&self) -> &'static str {
        "LTZ [SPAA'20] (Theorem 2): O(log d + loglog n) time, O(m·rounds) work"
    }
    fn caps(&self) -> SolverCaps {
        SolverCaps {
            deterministic: false,
            seeded: true,
            parallel: true,
            polylog_rounds: true,
            tracks_cost: true,
        }
    }
    fn solve(&self, g: &Graph, ctx: &SolveCtx) -> SolveReport {
        self.run(g.n(), g.edges().to_vec(), ctx)
    }

    /// Shard-native: the working edge vector is concatenated from the
    /// shard slices in one exact-size allocation.
    fn solve_store(&self, store: &dyn GraphStore, ctx: &SolveCtx) -> SolveReport {
        self.run(store.n(), concat_edges(store), ctx)
            .note("store_shards", store.shard_count())
    }
}

// Serve mode: LTZ restarts per epoch via the flatten-and-resolve default.
impl BatchedUpdate for LtzSolver {}

#[cfg(test)]
mod tests {
    use super::*;
    use parcc_graph::generators as gen;
    use parcc_graph::traverse::{components, same_partition};

    #[test]
    fn adapter_matches_oracle() {
        let g = gen::mixture(5);
        let r = LtzSolver.solve(&g, &SolveCtx::with_seed(11));
        assert!(same_partition(&r.labels, &components(&g)));
        assert!(r.rounds.unwrap() >= 1);
        assert!(r.cost.work > 0);
        for &l in &r.labels {
            assert_eq!(r.labels[l as usize], l, "labels must be canonical");
        }
    }
}
