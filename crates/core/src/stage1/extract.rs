//! EXTRACT(E, k) — the `log log n`-shrink (paper §4.2).
//!
//! Iterated FILTER: each round extracts more high-degree vertices into `V'`
//! and removes the edges already internal to `V'`, so later rounds work on
//! the ever-sparser low-degree remainder. A final REVERSE re-roots every
//! tree containing a `V'` vertex at one (Lemma 4.9: trees end flat, edges on
//! roots). Lemma 4.20: with `k = Θ(log log log n)` the current graph shrinks
//! to `n/log log n` vertices at linear work.

use crate::stage1::filter::{filter, reverse};
use crate::stage1::scratch::Stage1Scratch;
use parcc_pram::cost::CostTracker;
use parcc_pram::edge::{Edge, Vertex};
use parcc_pram::forest::ParentForest;
use parcc_pram::ops::alter_edges;
use parcc_pram::primitives::retain;
use parcc_pram::rng::Stream;
use rayon::prelude::*;

/// EXTRACT(E, k): contracts into `forest`, alters `edges` (pass-by-
/// reference), and returns `V'` — the extracted high-degree vertices.
#[must_use]
pub fn extract(
    edges: &mut Vec<Edge>,
    k: u32,
    delete_prob: f64,
    forest: &ParentForest,
    scratch: &Stage1Scratch,
    stream: Stream,
    tracker: &CostTracker,
) -> Vec<Vertex> {
    // Step 1: E' = the non-loops of E (a working copy).
    let mut e_prime: Vec<Edge> = edges.par_iter().copied().filter(|e| !e.is_loop()).collect();
    tracker.charge(edges.len() as u64, 1);
    let mut v_prime: Vec<Vertex> = Vec::new();
    let mut hooked_by_round: Vec<Vec<Vertex>> = Vec::with_capacity(k as usize + 1);

    // Step 2: k+1 rounds of FILTER; prune edges internal to V'.
    for i in 0..=k {
        let out = filter(
            &e_prime,
            k,
            delete_prob,
            forest,
            scratch,
            stream.substream(i as u64),
            tracker,
        );
        tracker.charge(out.survivors.len() as u64, 1);
        for &v in &out.survivors {
            if !scratch.in_vprime.get(v as usize) {
                scratch.in_vprime.set(v as usize);
                v_prime.push(v);
            }
        }
        alter_edges(forest, &mut e_prime, true, tracker);
        retain(
            &mut e_prime,
            |e| !(scratch.in_vprime.get(e.u() as usize) && scratch.in_vprime.get(e.v() as usize)),
            tracker,
        );
        hooked_by_round.push(out.hooked);
    }

    // Step 3: reverse flattening over EXTRACT rounds.
    for hooked in hooked_by_round.iter().rev() {
        forest.shortcut_set(hooked, tracker);
    }

    // Step 4: REVERSE(V', E) on the caller's edge set.
    reverse(&v_prime, edges, forest, tracker);

    // Release the membership marks.
    tracker.charge(v_prime.len() as u64, 1);
    v_prime
        .par_iter()
        .for_each(|&v| scratch.in_vprime.unset(v as usize));
    v_prime
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcc_graph::generators as gen;
    use parcc_graph::traverse::components;

    fn run_extract(
        g: &parcc_graph::Graph,
        k: u32,
        seed: u64,
    ) -> (ParentForest, Vec<Edge>, Vec<Vertex>) {
        let n = g.n();
        let forest = ParentForest::new(n);
        let scratch = Stage1Scratch::new(n);
        let tracker = CostTracker::new();
        let mut edges = g.edges().to_vec();
        let vp = extract(
            &mut edges,
            k,
            0.02,
            &forest,
            &scratch,
            Stream::new(seed, 4),
            &tracker,
        );
        (forest, edges, vp)
    }

    #[test]
    fn contracts_heavily_on_random_graph() {
        let g = gen::gnp(4000, 0.002, 5);
        let (forest, _, _) = run_extract(&g, 3, 1);
        let roots = forest.root_count();
        assert!(
            roots < g.n() / 2,
            "extract should contract at least half, left {roots}"
        );
    }

    #[test]
    fn trees_flat_edges_on_roots_lemma_4_9() {
        let g = gen::gnp(1200, 0.004, 2);
        let (forest, edges, _) = run_extract(&g, 2, 3);
        assert!(forest.max_height() <= 1, "Lemma 4.9: trees must be flat");
        for e in &edges {
            assert!(forest.is_root(e.u()), "edge end {} not a root", e.u());
            assert!(forest.is_root(e.v()), "edge end {} not a root", e.v());
        }
    }

    #[test]
    fn contraction_respects_components() {
        let g = gen::expander_union(4, 120, 4, 9);
        let truth = components(&g);
        let (forest, _, _) = run_extract(&g, 2, 7);
        let tr = CostTracker::new();
        for v in 0..g.n() as u32 {
            let r = forest.find_root(v, &tr);
            assert_eq!(
                truth[r as usize], truth[v as usize],
                "vertex {v} contracted across components"
            );
        }
    }

    #[test]
    fn work_is_near_linear() {
        let g = gen::gnp(8000, 0.001, 8);
        let n = g.n();
        let forest = ParentForest::new(n);
        let scratch = Stage1Scratch::new(n);
        let tracker = CostTracker::new();
        let mut edges = g.edges().to_vec();
        let _ = extract(
            &mut edges,
            2,
            0.02,
            &forest,
            &scratch,
            Stream::new(1, 4),
            &tracker,
        );
        let per_item = tracker.work() as f64 / (g.n() + g.m()) as f64;
        // FILTER copies decay geometrically; constant small multiple of m+n.
        assert!(per_item < 400.0, "work per item {per_item}");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let g = parcc_graph::Graph::new(3, vec![]);
        let (forest, edges, vp) = run_extract(&g, 2, 1);
        assert_eq!(forest.root_count(), 3);
        assert!(edges.is_empty());
        assert!(vp.is_empty());
    }
}
