//! FILTER(E, k) and REVERSE(V', E) (paper §4.2).
//!
//! FILTER runs `k+1` rounds of MATCHING + ALTER + geometric edge deletion on
//! a *copy* of the edge set (pass-by-value, per the paper), then flattens the
//! hooked vertices in reverse round order (each hooked vertex's parent is a
//! root at the end of its round's reverse iteration — Lemma 4.6). It returns
//! the surviving high-degree vertices `V(E)`.
//!
//! REVERSE re-roots flat trees so that a tree containing a high-degree
//! vertex from `V'` becomes rooted at one (the dense part keeps the names).

use crate::stage1::matching::matching;
use crate::stage1::scratch::Stage1Scratch;
use parcc_pram::cost::CostTracker;
use parcc_pram::edge::{Edge, Vertex};
use parcc_pram::forest::ParentForest;
use parcc_pram::ops::alter_edges;
use parcc_pram::primitives::retain;
use parcc_pram::rng::Stream;
use rayon::prelude::*;

/// Result of one FILTER call.
#[derive(Debug)]
pub struct FilterOutcome {
    /// `V(E)`: distinct endpoints of the surviving edges (the "filtered out"
    /// high-degree part).
    pub survivors: Vec<Vertex>,
    /// Every vertex hooked during the call (already reverse-flattened).
    pub hooked: Vec<Vertex>,
}

/// FILTER(E, k): see module docs. `delete_prob` is the per-round edge
/// deletion probability (paper: `10^-4`).
#[must_use]
pub fn filter(
    edges_in: &[Edge],
    k: u32,
    delete_prob: f64,
    forest: &ParentForest,
    scratch: &Stage1Scratch,
    stream: Stream,
    tracker: &CostTracker,
) -> FilterOutcome {
    // Pass-by-value: FILTER's deletions must not touch the caller's edges.
    let mut e = edges_in.to_vec();
    tracker.charge(e.len() as u64, 1);
    let mut hooked_by_round: Vec<Vec<Vertex>> = Vec::with_capacity(k as usize + 1);

    // Step 1: k+1 rounds of MATCHING; ALTER; random deletion.
    for j in 0..=k {
        let round_stream = stream.substream(j as u64);
        let tag = scratch.next_tag();
        let hooked = matching(&mut e, forest, scratch, round_stream, tag, tracker);
        alter_edges(forest, &mut e, true, tracker);
        tracker.charge(e.len() as u64, 1);
        let del = round_stream.substream(0xde1);
        retain(&mut e, |&ed| !del.coin(ed.0, delete_prob), tracker);
        hooked_by_round.push(hooked);
    }

    // Step 2: reverse flattening — round k down to 0.
    for hooked in hooked_by_round.iter().rev() {
        forest.shortcut_set(hooked, tracker);
    }

    // Step 3: return V(E).
    let survivors: Vec<Vertex> = e
        .par_iter()
        .flat_map_iter(|ed| [ed.u(), ed.v()])
        .filter(|&v| scratch.vert_mark.try_claim(v as usize, 1))
        .collect();
    survivors
        .par_iter()
        .for_each(|&v| scratch.vert_mark.clear(v as usize));
    tracker.charge(e.len() as u64, 1);

    FilterOutcome {
        survivors,
        hooked: hooked_by_round.into_iter().flatten().collect(),
    }
}

/// REVERSE(V', E) (paper §4.2): for every non-root `v ∈ V'`, an arbitrary
/// such child wins `v.p.p = v` and becomes the new root; then one global
/// shortcut flattens, and ALTER moves `E` onto the new roots.
pub fn reverse(
    v_prime: &[Vertex],
    edges: &mut Vec<Edge>,
    forest: &ParentForest,
    tracker: &CostTracker,
) {
    // Step 1 (two synchronous sub-steps over the same non-root set).
    let nonroots: Vec<Vertex> = v_prime
        .par_iter()
        .copied()
        .filter(|&v| !forest.is_root(v))
        .collect();
    tracker.charge(v_prime.len() as u64 + 2 * nonroots.len() as u64, 3);
    nonroots.par_iter().for_each(|&v| {
        forest.set_parent(forest.parent(v), v);
    });
    nonroots.par_iter().for_each(|&v| {
        forest.shortcut_vertex(v);
    });
    // Step 2: one global shortcut.
    forest.shortcut_all(tracker);
    // Step 3: ALTER(E).
    alter_edges(forest, edges, true, tracker);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_edges(n: usize) -> Vec<Edge> {
        (0..n as u32 - 1).map(|i| Edge::new(i, i + 1)).collect()
    }

    #[test]
    fn filter_contracts_and_flattens() {
        let n = 1000;
        let forest = ParentForest::new(n);
        let scratch = Stage1Scratch::new(n);
        let tracker = CostTracker::new();
        let out = filter(
            &path_edges(n),
            6,
            0.02,
            &forest,
            &scratch,
            Stream::new(3, 3),
            &tracker,
        );
        assert!(forest.root_count() < n, "filter must contract something");
        assert!(
            forest.max_height() <= 2,
            "reverse flattening keeps trees shallow, got {}",
            forest.max_height()
        );
        assert!(!out.hooked.is_empty());
    }

    #[test]
    fn filter_does_not_mutate_input() {
        let n = 50;
        let edges = path_edges(n);
        let copy = edges.clone();
        let forest = ParentForest::new(n);
        let scratch = Stage1Scratch::new(n);
        let tracker = CostTracker::new();
        let _ = filter(
            &edges,
            3,
            0.02,
            &forest,
            &scratch,
            Stream::new(1, 1),
            &tracker,
        );
        assert_eq!(edges, copy);
    }

    #[test]
    fn filter_contraction_is_component_safe() {
        // Two halves must never share a root.
        let n = 200;
        let mut edges = path_edges(100);
        edges.extend((100..199u32).map(|i| Edge::new(i, i + 1)));
        let forest = ParentForest::new(n);
        let scratch = Stage1Scratch::new(n);
        let tracker = CostTracker::new();
        let _ = filter(
            &edges,
            5,
            0.02,
            &forest,
            &scratch,
            Stream::new(2, 2),
            &tracker,
        );
        let tr = CostTracker::new();
        for v in 0..100u32 {
            let r = forest.find_root(v, &tr);
            assert!(r < 100, "left-half vertex {v} escaped to {r}");
        }
        for v in 100..200u32 {
            let r = forest.find_root(v, &tr);
            assert!(r >= 100, "right-half vertex {v} escaped to {r}");
        }
    }

    #[test]
    fn filter_survivors_have_edges() {
        let n = 400;
        let forest = ParentForest::new(n);
        let scratch = Stage1Scratch::new(n);
        let tracker = CostTracker::new();
        let out = filter(
            &path_edges(n),
            2,
            0.05,
            &forest,
            &scratch,
            Stream::new(9, 9),
            &tracker,
        );
        for &v in &out.survivors {
            assert!(forest.is_root(v) || !forest.is_root(v)); // well-formed id
            assert!((v as usize) < n);
        }
        // Dedup: no vertex twice.
        let set: std::collections::HashSet<_> = out.survivors.iter().collect();
        assert_eq!(set.len(), out.survivors.len());
    }

    #[test]
    fn reverse_reroots_at_vprime() {
        // Flat tree rooted at 0 with children 1, 2; V' = {2}.
        let forest = ParentForest::new(3);
        forest.set_parent(1, 0);
        forest.set_parent(2, 0);
        let tracker = CostTracker::new();
        let mut edges = vec![Edge::new(0, 1)];
        reverse(&[2], &mut edges, &forest, &tracker);
        assert!(forest.is_root(2), "V' member must become the root");
        assert_eq!(forest.parent(0), 2);
        assert_eq!(forest.parent(1), 2);
        assert!(forest.max_height() <= 1);
    }

    #[test]
    fn reverse_ignores_roots_in_vprime() {
        let forest = ParentForest::new(2);
        let tracker = CostTracker::new();
        let mut edges = vec![];
        reverse(&[0, 1], &mut edges, &forest, &tracker);
        assert!(forest.is_root(0) && forest.is_root(1));
    }

    #[test]
    fn reverse_alters_edges() {
        let forest = ParentForest::new(4);
        forest.set_parent(1, 0);
        let tracker = CostTracker::new();
        let mut edges = vec![Edge::new(1, 3)];
        reverse(&[1], &mut edges, &forest, &tracker);
        // 1 became the root; edge endpoint follows.
        assert_eq!(edges, vec![Edge::new(1, 3)]);
        assert!(forest.is_root(1));
        assert_eq!(forest.parent(0), 1);
    }
}
