//! MATCHING(E) — the constant-shrink algorithm (paper §4.1).
//!
//! One constant-depth pass that, given an edge set whose ends are roots,
//! reduces the number of live roots by a constant fraction w.h.p.
//! (Lemma 4.4), while guaranteeing every original root ends up a root or a
//! child of a root (Lemma 4.5). The nine steps of the paper's pseudocode are
//! implemented literally; each concurrent election uses the write-then-check
//! CRCW idiom from the paper's own implementation notes (Lemma 4.3).

use crate::stage1::scratch::Stage1Scratch;
use parcc_pram::cost::CostTracker;
use parcc_pram::edge::{Edge, Vertex};
use parcc_pram::forest::ParentForest;
use parcc_pram::primitives::retain;
use parcc_pram::rng::Stream;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Run MATCHING(E). `edges` is filtered in place (Step 1's deletions);
/// hooked vertices are logged in `scratch.update_log` under `tag` and
/// returned. Charges `O(|E|)` work at `O(1)` depth.
pub fn matching(
    edges: &mut Vec<Edge>,
    forest: &ParentForest,
    scratch: &Stage1Scratch,
    stream: Stream,
    tag: u64,
    tracker: &CostTracker,
) -> Vec<Vertex> {
    // Step 1: delete edges touching non-roots, and self-loops.
    retain(
        edges,
        |e| forest.is_root(e.u()) && forest.is_root(e.v()) && !e.is_loop(),
        tracker,
    );
    if edges.is_empty() {
        return Vec::new();
    }
    let m = edges.len();
    tracker.charge(m as u64 * 9, 9);

    // Collect the distinct endpoints (claim-once) and clear their cells.
    let verts: Vec<Vertex> = edges
        .par_iter()
        .flat_map_iter(|e| [e.u(), e.v()])
        .filter(|&v| scratch.vert_mark.try_claim(v as usize, 0))
        .collect();
    scratch.clear_for(&verts);

    // Step 2: orient each edge from the large end to the small end.
    let tail = |e: Edge| e.u().max(e.v());
    let head = |e: Edge| e.u().min(e.v());
    let mut in_d = Vec::with_capacity(m);
    in_d.resize_with(m, || AtomicBool::new(true));

    // Step 3: each tail keeps one arbitrary outgoing arc.
    edges.par_iter().enumerate().for_each(|(i, &e)| {
        scratch.out_winner.write(tail(e) as usize, i as u64);
    });
    edges.par_iter().enumerate().for_each(|(i, &e)| {
        if scratch.out_winner.read(tail(e) as usize) != i as u64 {
            in_d[i].store(false, Ordering::Relaxed);
        }
    });

    // Step 4: mark non-singletons from D-after-Step-3, then hook each
    // singleton under an arbitrary original arc into it.
    edges.par_iter().enumerate().for_each(|(i, &e)| {
        if in_d[i].load(Ordering::Relaxed) {
            scratch.non_singleton.set(tail(e) as usize);
            scratch.non_singleton.set(head(e) as usize);
        }
    });
    edges.par_iter().for_each(|&e| {
        let (t, h) = (tail(e), head(e));
        if !scratch.non_singleton.get(h as usize) {
            forest.set_parent(h, t);
            scratch.update_log.write(h as usize, tag);
        }
    });

    // Step 5: roots with >1 incoming arcs lose all their outgoing arcs.
    let live = |i: usize| in_d[i].load(Ordering::Relaxed);
    edges.par_iter().enumerate().for_each(|(i, &e)| {
        if live(i) {
            scratch.in_winner.write(head(e) as usize, i as u64);
        }
    });
    edges.par_iter().enumerate().for_each(|(i, &e)| {
        if live(i) && scratch.in_winner.read(head(e) as usize) != i as u64 {
            scratch.multi_in.set(head(e) as usize);
        }
    });
    edges.par_iter().enumerate().for_each(|(i, &e)| {
        if live(i) && scratch.multi_in.get(tail(e) as usize) {
            in_d[i].store(false, Ordering::Relaxed);
        }
    });

    // Step 6: re-detect multi-in heads on the pruned D; they absorb all
    // their in-neighbours, which leave D.
    edges.par_iter().enumerate().for_each(|(i, &e)| {
        if live(i) {
            scratch.in_winner2.write(head(e) as usize, i as u64);
        }
    });
    edges.par_iter().enumerate().for_each(|(i, &e)| {
        if live(i) && scratch.in_winner2.read(head(e) as usize) != i as u64 {
            scratch.multi_in2.set(head(e) as usize);
        }
    });
    edges.par_iter().enumerate().for_each(|(i, &e)| {
        if live(i) && scratch.multi_in2.get(head(e) as usize) {
            let t = tail(e);
            forest.set_parent(t, head(e));
            scratch.update_log.write(t as usize, tag);
            scratch.deleted.set(t as usize);
        }
    });
    edges.par_iter().enumerate().for_each(|(i, &e)| {
        if live(i)
            && (scratch.deleted.get(tail(e) as usize) || scratch.deleted.get(head(e) as usize))
        {
            in_d[i].store(false, Ordering::Relaxed);
        }
    });

    // Step 7: delete each remaining arc with probability 1/2.
    edges.par_iter().enumerate().for_each(|(i, _)| {
        if live(i) && stream.coin(i as u64, 0.5) {
            in_d[i].store(false, Ordering::Relaxed);
        }
    });

    // Step 8: isolated arcs hook their head under their tail. Sharing is
    // detected by write-then-verify: any losing arc marks the shared end.
    edges.par_iter().enumerate().for_each(|(i, &e)| {
        if live(i) {
            scratch.end_mark.write(tail(e) as usize, i as u64);
            scratch.end_mark.write(head(e) as usize, i as u64);
        }
    });
    edges.par_iter().enumerate().for_each(|(i, &e)| {
        if live(i) {
            if scratch.end_mark.read(tail(e) as usize) != i as u64 {
                scratch.shared.set(tail(e) as usize);
            }
            if scratch.end_mark.read(head(e) as usize) != i as u64 {
                scratch.shared.set(head(e) as usize);
            }
        }
    });
    edges.par_iter().enumerate().for_each(|(i, &e)| {
        let (t, h) = (tail(e), head(e));
        if live(i) && !scratch.shared.get(t as usize) && !scratch.shared.get(h as usize) {
            forest.set_parent(h, t);
            scratch.update_log.write(h as usize, tag);
        }
    });

    // Step 9: both ends of every edge shortcut once.
    edges.par_iter().for_each(|&e| {
        forest.shortcut_vertex(e.u());
        forest.shortcut_vertex(e.v());
    });

    // Collect hooked vertices and release the endpoint claims.
    let hooked: Vec<Vertex> = verts
        .par_iter()
        .copied()
        .filter(|&v| scratch.update_log.read(v as usize) == tag)
        .collect();
    verts
        .par_iter()
        .for_each(|&v| scratch.vert_mark.clear(v as usize));
    hooked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_once(
        n: usize,
        pairs: &[(u32, u32)],
        seed: u64,
    ) -> (ParentForest, Vec<Edge>, Vec<Vertex>) {
        let forest = ParentForest::new(n);
        let scratch = Stage1Scratch::new(n);
        let tracker = CostTracker::new();
        let mut edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v)).collect();
        let hooked = matching(
            &mut edges,
            &forest,
            &scratch,
            Stream::new(seed, 1),
            scratch.next_tag(),
            &tracker,
        );
        (forest, edges, hooked)
    }

    #[test]
    fn drops_loops_and_nonroot_edges() {
        let forest = ParentForest::new(4);
        forest.set_parent(3, 2);
        let scratch = Stage1Scratch::new(4);
        let tracker = CostTracker::new();
        let mut edges = vec![Edge::new(0, 0), Edge::new(3, 1), Edge::new(0, 1)];
        matching(
            &mut edges,
            &forest,
            &scratch,
            Stream::new(1, 1),
            scratch.next_tag(),
            &tracker,
        );
        // Loop gone; (3,1) gone because 3 is not a root.
        assert!(!edges.contains(&Edge::new(0, 0)));
        assert!(!edges.contains(&Edge::new(3, 1)));
    }

    #[test]
    fn single_edge_always_matches() {
        // A single arc is isolated unless deleted by the Step-7 coin; the
        // Step-4 singleton rule cannot apply (both ends are covered), so
        // run several seeds and require at least one success, plus
        // never-merging beyond the component.
        let mut merged = 0;
        for seed in 0..20 {
            let (f, _, _) = run_once(2, &[(0, 1)], seed);
            let tr = CostTracker::new();
            if f.find_root(0, &tr) == f.find_root(1, &tr) {
                merged += 1;
            }
        }
        assert!(
            merged >= 5,
            "single edge should often match, got {merged}/20"
        );
    }

    #[test]
    fn star_center_absorbs_leaves() {
        // Star from high id to low ids: all arcs point into vertex 0, which
        // has >1 incoming arcs — Step 6 absorbs every leaf.
        let n = 10;
        let pairs: Vec<(u32, u32)> = (1..n as u32).map(|v| (v, 0)).collect();
        let (f, _, hooked) = run_once(n, &pairs, 3);
        let tr = CostTracker::new();
        for v in 1..n as u32 {
            assert_eq!(f.find_root(v, &tr), 0, "leaf {v} should hook under 0");
        }
        assert_eq!(hooked.len(), n - 1);
    }

    #[test]
    fn reduces_roots_by_constant_fraction() {
        // Random graph with ~2n edges: expect a solid root reduction.
        let n = 2000usize;
        let s = Stream::new(7, 7);
        let pairs: Vec<(u32, u32)> = (0..2 * n as u64)
            .map(|i| {
                (
                    s.below(2 * i, n as u64) as u32,
                    s.below(2 * i + 1, n as u64) as u32,
                )
            })
            .filter(|&(a, b)| a != b)
            .collect();
        let (f, _, _) = run_once(n, &pairs, 11);
        let roots = f.root_count();
        assert!(
            roots < n - n / 20,
            "matching should remove ≥5% of roots, left {roots}/{n}"
        );
    }

    #[test]
    fn lemma_4_5_root_or_child_of_root() {
        // Every original root is a root or a child of a root afterwards.
        for seed in 0..10 {
            let n = 300usize;
            let s = Stream::new(seed, 3);
            let pairs: Vec<(u32, u32)> = (0..n as u64)
                .map(|i| {
                    (
                        s.below(2 * i, n as u64) as u32,
                        s.below(2 * i + 1, n as u64) as u32,
                    )
                })
                .collect();
            let (f, _, _) = run_once(n, &pairs, seed);
            assert!(f.max_height() <= 1, "trees must stay flat (Lemma 4.5)");
        }
    }

    #[test]
    fn hooks_stay_within_components() {
        // Two disjoint triangles never merge.
        for seed in 0..10 {
            let (f, _, _) = run_once(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)], seed);
            let tr = CostTracker::new();
            let left = f.find_root(0, &tr);
            let right = f.find_root(3, &tr);
            assert_ne!(left, right);
            for v in [1u32, 2] {
                assert_eq!(f.find_root(v, &tr), left);
            }
        }
    }

    #[test]
    fn charges_linear_work_constant_depth() {
        let n = 1000usize;
        let pairs: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let forest = ParentForest::new(n);
        let scratch = Stage1Scratch::new(n);
        let tracker = CostTracker::new();
        let mut edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v)).collect();
        matching(
            &mut edges,
            &forest,
            &scratch,
            Stream::new(5, 5),
            scratch.next_tag(),
            &tracker,
        );
        assert!(tracker.work() <= 20 * n as u64, "work {}", tracker.work());
        assert!(tracker.depth() <= 16, "depth {}", tracker.depth());
    }

    #[test]
    fn scratch_is_reusable_across_calls() {
        let n = 100usize;
        let forest = ParentForest::new(n);
        let scratch = Stage1Scratch::new(n);
        let tracker = CostTracker::new();
        let pairs: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let mut edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v)).collect();
        for round in 0..6u64 {
            matching(
                &mut edges,
                &forest,
                &scratch,
                Stream::new(9, round),
                scratch.next_tag(),
                &tracker,
            );
            parcc_pram::ops::alter_edges(&forest, &mut edges, true, &tracker);
        }
        // Path must never split into different components.
        let tr = CostTracker::new();
        let labels: Vec<u32> = (0..n as u32).map(|v| forest.find_root(v, &tr)).collect();
        // All hooks stayed inside the single true component.
        let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
        assert!(distinct.len() < n, "repeated matching must contract");
    }
}
