//! REDUCE(V, E, k) — the `poly(log n)`-shrink (paper §4.3), Stage 1's entry
//! point.
//!
//! EXTRACT knocks the vertex count down to `n/log log n`; a long FILTER then
//! separates the dense part `V'`; the sparse remainder `E'` (expected `O(1)`
//! edges per surviving vertex, Lemma 4.15) is contracted by `k` MATCHING
//! rounds; REVERSE re-roots at the dense part. Lemma 4.25: the current graph
//! ends with `n/polylog n` vertices, in `O(log log n)` depth and linear work.

use crate::params::Params;
use crate::stage1::extract::extract;
use crate::stage1::filter::{filter, reverse};
use crate::stage1::matching::matching;
use crate::stage1::scratch::Stage1Scratch;
use parcc_pram::cost::CostTracker;
use parcc_pram::edge::{Edge, Vertex};
use parcc_pram::forest::ParentForest;
use parcc_pram::ops::alter_edges;
use parcc_pram::rng::Stream;
use rayon::prelude::*;

/// The current graph after Stage 1.
#[derive(Debug)]
pub struct Stage1Output {
    /// Altered edge set: loop-free, both ends roots.
    pub edges: Vec<Edge>,
    /// The current-graph vertex set: distinct roots with adjacent edges.
    pub active: Vec<Vertex>,
}

/// Distinct endpoints of `edges` (claim-once through the scratch marks).
pub(crate) fn distinct_endpoints(
    edges: &[Edge],
    scratch: &Stage1Scratch,
    tracker: &CostTracker,
) -> Vec<Vertex> {
    tracker.charge(edges.len() as u64, 1);
    let verts: Vec<Vertex> = edges
        .par_iter()
        .flat_map_iter(|e| [e.u(), e.v()])
        .filter(|&v| scratch.vert_mark.try_claim(v as usize, 2))
        .collect();
    verts
        .par_iter()
        .for_each(|&v| scratch.vert_mark.clear(v as usize));
    verts
}

/// Run Stage 1 on the input graph's edge list, contracting into `forest`.
///
/// Post-conditions (Lemma 4.21 made explicit by a final cleanup): every tree
/// in the labeled digraph is flat, and both ends of every returned edge are
/// roots.
#[must_use]
pub fn reduce(
    input_edges: &[Edge],
    params: &Params,
    forest: &ParentForest,
    scratch: &Stage1Scratch,
    tracker: &CostTracker,
) -> Stage1Output {
    reduce_vec(input_edges.to_vec(), params, forest, scratch, tracker)
}

/// Stage-1 entry for shard-chunked inputs (`GraphStore` backends): the
/// working copy is assembled straight from the shard slices — one
/// exact-size allocation, no intermediate flat graph — and then follows
/// the identical pipeline, so a single shard is bit-for-bit [`reduce`].
#[must_use]
pub fn reduce_sharded(
    shards: &[&[Edge]],
    params: &Params,
    forest: &ParentForest,
    scratch: &Stage1Scratch,
    tracker: &CostTracker,
) -> Stage1Output {
    let total = shards.iter().map(|s| s.len()).sum();
    let mut e = Vec::with_capacity(total);
    for s in shards {
        e.extend_from_slice(s);
    }
    reduce_vec(e, params, forest, scratch, tracker)
}

/// The shared Stage-1 body: consumes the working edge vector in place.
fn reduce_vec(
    mut e: Vec<Edge>,
    params: &Params,
    forest: &ParentForest,
    scratch: &Stage1Scratch,
    tracker: &CostTracker,
) -> Stage1Output {
    let stream = Stream::new(params.seed, 0x51a6e1);
    tracker.charge(e.len() as u64, 1);
    alter_edges(forest, &mut e, true, tracker);

    // Step 1: EXTRACT (the log log n shrink).
    let _ = extract(
        &mut e,
        params.extract_rounds,
        params.filter_delete_prob,
        forest,
        scratch,
        stream.substream(1),
        tracker,
    );

    // Step 2: the long FILTER separates the dense part V'.
    let out = filter(
        &e,
        params.reduce_rounds,
        params.filter_delete_prob,
        forest,
        scratch,
        stream.substream(2),
        tracker,
    );
    let v_prime = out.survivors;

    // Step 3: flatten the hooks and realign E.
    forest.shortcut_set(&out.hooked, tracker);
    alter_edges(forest, &mut e, true, tracker);

    // Step 4: E' = the edges not internal to V'.
    tracker.charge(v_prime.len() as u64, 1);
    v_prime
        .par_iter()
        .for_each(|&v| scratch.in_vprime.set(v as usize));
    let mut e_sparse: Vec<Edge> = e
        .par_iter()
        .copied()
        .filter(|ed| {
            !(scratch.in_vprime.get(ed.u() as usize) && scratch.in_vprime.get(ed.v() as usize))
        })
        .collect();
    tracker.charge(e.len() as u64, 1);

    // Step 5: contract the sparse part with MATCHING rounds.
    for round in 0..params.reduce_rounds {
        if e_sparse.is_empty() {
            break;
        }
        let tag = scratch.next_tag();
        let hooked = matching(
            &mut e_sparse,
            forest,
            scratch,
            stream.substream(0x500 + round as u64),
            tag,
            tracker,
        );
        forest.shortcut_set(&hooked, tracker);
        alter_edges(forest, &mut e_sparse, true, tracker);
    }

    // Step 6: REVERSE(V', E).
    reverse(&v_prime, &mut e, forest, tracker);
    v_prime
        .par_iter()
        .for_each(|&v| scratch.in_vprime.unset(v as usize));

    // Practical cleanup replacing the paper's interleaved shortcut schedule
    // (see DESIGN.md §3): tree heights are O(1) at this point, so a full
    // flatten costs O(n) work over O(1) rounds and certifies Lemma 4.21's
    // post-condition exactly.
    forest.flatten(tracker);
    alter_edges(forest, &mut e, true, tracker);

    let active = distinct_endpoints(&e, scratch, tracker);
    Stage1Output { edges: e, active }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcc_graph::generators as gen;
    use parcc_graph::traverse::components;
    use parcc_graph::Graph;

    fn run_reduce(g: &Graph, seed: u64) -> (ParentForest, Stage1Output, CostTracker) {
        let forest = ParentForest::new(g.n());
        let scratch = Stage1Scratch::new(g.n());
        let tracker = CostTracker::new();
        let params = Params::for_n(g.n()).with_seed(seed);
        let out = reduce(g.edges(), &params, &forest, &scratch, &tracker);
        (forest, out, tracker)
    }

    #[test]
    fn postconditions_flat_and_on_roots() {
        for (g, seed) in [
            (gen::gnp(3000, 0.002, 1), 1u64),
            (gen::cycle(2048), 2),
            (gen::grid2d(40, 40, false), 3),
            (gen::mixture(4), 4),
        ] {
            let (forest, out, _) = run_reduce(&g, seed);
            assert!(forest.max_height() <= 1, "trees must be flat");
            for e in &out.edges {
                assert!(forest.is_root(e.u()) && forest.is_root(e.v()));
                assert!(!e.is_loop());
            }
        }
    }

    #[test]
    fn strong_contraction_on_connected_graphs() {
        let g = gen::gnp(8000, 0.002, 7);
        let (_, out, _) = run_reduce(&g, 5);
        assert!(
            out.active.len() < g.n() / 8,
            "reduce should shrink to a small fraction: {} of {}",
            out.active.len(),
            g.n()
        );
    }

    #[test]
    fn contraction_respects_components() {
        for seed in 0..3u64 {
            let g = gen::mixture(seed);
            let truth = components(&g);
            let (forest, _, _) = run_reduce(&g, seed);
            let tr = CostTracker::new();
            for v in 0..g.n() as u32 {
                let r = forest.find_root(v, &tr);
                assert_eq!(truth[r as usize], truth[v as usize]);
            }
        }
    }

    #[test]
    fn small_components_often_fully_contract() {
        // 30 tiny cliques: most must be done (single root, no edges) after
        // stage 1.
        let parts: Vec<Graph> = (0..30).map(|_| gen::complete(4)).collect();
        let g = Graph::disjoint_union(&parts).permuted(3);
        let (_, out, _) = run_reduce(&g, 9);
        assert!(
            out.active.len() < g.n() / 2,
            "tiny cliques should mostly contract, {} active",
            out.active.len()
        );
    }

    #[test]
    fn work_is_linear_ish() {
        let g = gen::gnp(20_000, 0.0005, 3);
        let (_, _, tracker) = run_reduce(&g, 11);
        let per_item = tracker.work() as f64 / (g.n() + g.m()) as f64;
        assert!(per_item < 500.0, "work per item {per_item}");
    }

    #[test]
    fn edgeless_input() {
        let g = Graph::new(100, vec![]);
        let (forest, out, _) = run_reduce(&g, 1);
        assert_eq!(forest.root_count(), 100);
        assert!(out.edges.is_empty());
        assert!(out.active.is_empty());
    }

    #[test]
    fn deterministic_per_seed_single_threaded() {
        // Coin flips are pure functions of the seed; CRCW race winners are
        // not. Under one thread the winners are pinned too, so the whole
        // run must be bit-reproducible.
        let g = gen::gnp(2000, 0.003, 5);
        let (f1, o1, _) = parcc_pram::run_single_threaded(|| run_reduce(&g, 42));
        let (f2, o2, _) = parcc_pram::run_single_threaded(|| run_reduce(&g, 42));
        assert_eq!(f1.snapshot(), f2.snapshot());
        assert_eq!(o1.edges, o2.edges);
    }
}
