//! Stage 1 (paper §4): contract the graph to `n/polylog n` vertices in
//! `O(log log n)` time and `O(m + n)` work.
//!
//! The ladder of shrinkers:
//!
//! * [`matching`](mod@matching) — the constant-shrink algorithm (§4.1): one `O(1)`-depth
//!   pass that removes a constant fraction of the roots (Lemma 4.4).
//! * [`filter`](mod@filter) — `k` rounds of MATCHING with geometric edge deletion
//!   (§4.2); high-degree vertices survive to be returned, low-degree ones
//!   contract — the dense/sparse separator.
//! * [`extract`](mod@extract) — the `log log n`-shrink (§4.2): iterated FILTER plus
//!   [`reverse`] to re-root trees at high-degree vertices.
//! * [`reduce`](mod@reduce) — the `poly(log n)`-shrink (§4.3): EXTRACT, then a long
//!   FILTER, then MATCHING rounds over the leftover sparse part.

pub mod extract;
pub mod filter;
pub mod matching;
pub mod reduce;
pub mod scratch;

pub use extract::extract;
pub use filter::{filter, reverse};
pub use matching::matching;
pub use reduce::{reduce, reduce_sharded, Stage1Output};
pub use scratch::Stage1Scratch;
