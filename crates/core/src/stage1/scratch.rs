//! Shared scratch memory for Stage 1.
//!
//! MATCHING is invoked hundreds of times per run; its per-vertex CRCW cells
//! are allocated once here and cleared *only for the vertices each call
//! touches* (the paper's processors likewise reuse indexed blocks). The
//! update log survives across calls — entries are tagged with a
//! monotonically increasing tag, so stale entries are never mistaken for
//! current ones.

use parcc_pram::crcw::{Flags, TagCells};
use parcc_pram::edge::Vertex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Reusable per-vertex cells for MATCHING / FILTER / EXTRACT / REDUCE.
#[derive(Debug)]
pub struct Stage1Scratch {
    /// Winner of the outgoing-arc election (Step 3).
    pub out_winner: TagCells,
    /// Winner of the incoming-arc election (Steps 5 and 6).
    pub in_winner: TagCells,
    /// Second incoming-arc election (Step 6 re-detects after Step 5).
    pub in_winner2: TagCells,
    /// End-sharing election (Step 8).
    pub end_mark: TagCells,
    /// ">1 incoming arcs" marks for Step 5.
    pub multi_in: Flags,
    /// ">1 incoming arcs" marks for Step 6.
    pub multi_in2: Flags,
    /// "has an adjacent arc in D" marks (Step 4 singleton detection).
    pub non_singleton: Flags,
    /// Vertices deleted from D in Step 6.
    pub deleted: Flags,
    /// "end is shared" marks (Step 8).
    pub shared: Flags,
    /// Distinct-endpoint collection (claim-once).
    pub vert_mark: TagCells,
    /// Membership marks for `V'` in EXTRACT/REDUCE.
    pub in_vprime: Flags,
    /// Hook log: `update_log[v] = tag` when `v.p` was hooked under that tag.
    pub update_log: TagCells,
    tag_counter: AtomicU64,
}

impl Stage1Scratch {
    /// Scratch for an `n`-vertex labeled digraph.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            out_winner: TagCells::new(n),
            in_winner: TagCells::new(n),
            in_winner2: TagCells::new(n),
            end_mark: TagCells::new(n),
            multi_in: Flags::new(n),
            multi_in2: Flags::new(n),
            non_singleton: Flags::new(n),
            deleted: Flags::new(n),
            shared: Flags::new(n),
            vert_mark: TagCells::new(n),
            in_vprime: Flags::new(n),
            update_log: TagCells::new(n),
            tag_counter: AtomicU64::new(1),
        }
    }

    /// A fresh, never-before-used tag for hook logging.
    pub fn next_tag(&self) -> u64 {
        self.tag_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Clear the per-call cells for the given vertices (the update log and
    /// `in_vprime` are managed by their owners).
    pub fn clear_for(&self, verts: &[Vertex]) {
        use rayon::prelude::*;
        verts.par_iter().for_each(|&v| {
            let i = v as usize;
            self.out_winner.clear(i);
            self.in_winner.clear(i);
            self.in_winner2.clear(i);
            self.end_mark.clear(i);
            self.multi_in.unset(i);
            self.multi_in2.unset(i);
            self.non_singleton.unset(i);
            self.deleted.unset(i);
            self.shared.unset(i);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique_and_increasing() {
        let s = Stage1Scratch::new(4);
        let a = s.next_tag();
        let b = s.next_tag();
        assert!(b > a);
    }

    #[test]
    fn clear_for_resets_only_given() {
        let s = Stage1Scratch::new(3);
        s.multi_in.set(0);
        s.multi_in.set(2);
        s.out_winner.write(2, 9);
        s.clear_for(&[2]);
        assert!(s.multi_in.get(0));
        assert!(!s.multi_in.get(2));
        assert!(s.out_winner.vacant(2));
    }
}
