//! Stage 3 (paper §6): connectivity on the sampled graph, and the known-λ
//! pipeline (Theorem 3).
//!
//! After Stage 2 every surviving root has degree ≥ b. Sampling each edge
//! with probability `1/polylog` then preserves the component-wise spectral
//! gap (Corollary C.3) — so components stay connected and their diameters
//! stay `O(polylog)` — and the sampled graph is small enough that Theorem 2
//! finishes in `O(log log n)` time at `O(m)` work.
//!
//! The `[KKT95]` clean-up that §3.4 introduces for the unknown-λ corner case
//! is applied unconditionally here: after solving the sample, any remaining
//! inter-tree edges (none, w.h.p., when the gap assumption holds) are solved
//! directly. This makes the library's output correct for *every* input, not
//! just w.h.p. on well-conditioned ones.

use crate::params::Params;
use crate::stage1::reduce::{distinct_endpoints, reduce};
use crate::stage1::Stage1Scratch;
use crate::stage2::{build_skeleton, increase, CurrentGraph, Stage2Scratch};
use parcc_ltz::connect::{ltz_connectivity, LtzParams, LtzStats};
use parcc_ltz::state::Budget;
use parcc_pram::cost::CostTracker;
use parcc_pram::edge::Vertex;
use parcc_pram::forest::ParentForest;
use parcc_pram::ops::alter_edges;
use parcc_pram::primitives::{sample_edges, simplify_edges};
use parcc_pram::rng::Stream;

/// Telemetry from SAMPLESOLVE.
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Edges in the sampled subgraph handed to Theorem 2.
    pub sampled_edges: usize,
    /// Theorem-2 telemetry for the main solve.
    pub ltz: LtzStats,
    /// Inter-tree edges the clean-up pass had to handle (0 when the gap
    /// assumption held — the paper's w.h.p. case).
    pub cleanup_edges: usize,
}

/// SAMPLESOLVE(G) (paper §6) over the current graph. Contracts every
/// remaining component into one tree of `forest` — unconditionally.
pub fn sample_solve(
    cur: &mut CurrentGraph,
    forest: &ParentForest,
    params: &Params,
    seed: u64,
    tracker: &CostTracker,
) -> SolveStats {
    let mut stats = SolveStats::default();
    let ltz_params = LtzParams {
        budget: Budget::for_n(forest.len()),
        ..LtzParams::for_n(forest.len()).with_seed(seed ^ 0x50)
    };
    if cur.active.len() <= params.small_solve_threshold {
        // Step 1: small vertex count — simplify and solve directly.
        let e = simplify_edges(&cur.edges, true, tracker);
        stats.sampled_edges = e.len();
        stats.ltz = ltz_connectivity(e, forest, ltz_params, tracker);
    } else {
        // Steps 2–3: sample w.p. 1/polylog and solve the sample.
        let sampled = sample_edges(
            &cur.edges,
            params.sparsify_prob,
            Stream::new(seed, 0x5a3),
            tracker,
        );
        stats.sampled_edges = sampled.len();
        stats.ltz = ltz_connectivity(sampled, forest, ltz_params, tracker);
    }
    // Step 4 + corner case: flatten, realign, and finish any stragglers
    // (only non-loop edges can witness unfinished components).
    forest.flatten(tracker);
    alter_edges(forest, &mut cur.edges, false, tracker);
    let leftovers = simplify_edges(&cur.edges, true, tracker);
    if !leftovers.is_empty() {
        stats.cleanup_edges = leftovers.len();
        let _ = ltz_connectivity(leftovers, forest, ltz_params, tracker);
        forest.flatten(tracker);
        alter_edges(forest, &mut cur.edges, false, tracker);
    }
    cur.active = Vec::new();
    stats
}

/// §8-style probability boosting: run up to `attempts` independent instances
/// of SAMPLESOLVE (fresh sampling randomness each time), accepting the first
/// that finishes without the `[KKT95]` clean-up having to repair anything.
///
/// The paper runs `Θ(log n)` instances *in parallel* and charges the maximum
/// depth; we run them sequentially (charging the sum — a strictly more
/// conservative accounting) because at bench scale the first instance
/// virtually always succeeds and the extra machinery would never be
/// exercised. Returns the per-instance stats of the accepted attempt plus
/// the attempt count.
pub fn sample_solve_boosted(
    cur: &mut CurrentGraph,
    forest: &ParentForest,
    params: &Params,
    attempts: u32,
    seed: u64,
    tracker: &CostTracker,
) -> (SolveStats, u32) {
    let attempts = attempts.max(1);
    for attempt in 0..attempts {
        let is_last = attempt + 1 == attempts;
        let snapshot = if is_last {
            None
        } else {
            Some(forest.snapshot())
        };
        let mut trial = cur.clone();
        tracker.charge(cur.edges.len() as u64, 1); // the working copy
        let stats = sample_solve(
            &mut trial,
            forest,
            params,
            seed ^ (0xb005u64 << 16) ^ attempt as u64,
            tracker,
        );
        if stats.cleanup_edges == 0 || is_last {
            *cur = trial;
            return (stats, attempt + 1);
        }
        if let Some(snap) = snapshot {
            forest.restore(&snap);
            tracker.charge(forest.len() as u64, 1);
        }
    }
    unreachable!("loop always returns on the last attempt")
}

/// Theorem 3: the three-stage pipeline with a *fixed* degree/gap parameter
/// `b` (the paper's "Connectivity with known λ ≥ 1/log n" outline in §3).
/// Returns component labels and the solve telemetry.
pub fn connectivity_known_gap(
    g: &parcc_graph::Graph,
    b: u64,
    params: &Params,
    tracker: &CostTracker,
) -> (Vec<Vertex>, SolveStats) {
    let n = g.n();
    let forest = ParentForest::new(n);
    let s1 = Stage1Scratch::new(n);
    let s2 = Stage2Scratch::new(n);
    // Stage 1.
    let out = reduce(g.edges(), params, &forest, &s1, tracker);
    let mut cur = CurrentGraph {
        edges: out.edges,
        active: out.active,
    };
    // Stage 2.
    let sk = build_skeleton(
        &cur.edges,
        &cur.active,
        b,
        params.hi_threshold_factor,
        params.sparsify_prob,
        &s2,
        Stream::new(params.seed, 0xb1),
        tracker,
    );
    let _ = increase(
        &mut cur,
        sk.edges,
        b,
        &forest,
        params,
        &s1,
        &s2,
        params.seed ^ 0x2,
        tracker,
    );
    cur.active = distinct_endpoints(&cur.edges, &s1, tracker);
    // Stage 3.
    let stats = sample_solve(&mut cur, &forest, params, params.seed ^ 0x3, tracker);
    forest.flatten(tracker);
    (forest.labels(tracker), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::Stage1Scratch;
    use parcc_graph::generators as gen;
    use parcc_graph::traverse::{components, same_partition};
    use parcc_graph::Graph;

    fn check(g: &Graph, b: u64, seed: u64) -> SolveStats {
        let params = Params::for_n(g.n()).with_seed(seed);
        let tracker = CostTracker::new();
        let (labels, stats) = connectivity_known_gap(g, b, &params, &tracker);
        assert!(
            same_partition(&labels, &components(g)),
            "wrong partition on n={} m={}",
            g.n(),
            g.m()
        );
        stats
    }

    #[test]
    fn correct_on_expanders() {
        let stats = check(&gen::random_regular(3000, 8, 2), 16, 1);
        // Gap assumption holds: the clean-up should see nothing.
        assert_eq!(
            stats.cleanup_edges, 0,
            "expander sampling must not disconnect"
        );
    }

    #[test]
    fn correct_on_expander_union() {
        check(&gen::expander_union(5, 600, 8, 4), 16, 2);
    }

    #[test]
    fn correct_on_low_gap_graphs_via_cleanup() {
        // Cycles have λ ≈ 1/n²: the gap assumption is *wrong* here, yet the
        // corner-case clean-up must still produce correct output.
        check(&gen::cycle(4000), 16, 3);
        check(&gen::path(3000), 16, 4);
    }

    #[test]
    fn correct_on_mixtures_and_small_graphs() {
        check(&gen::mixture(7), 16, 5);
        check(&Graph::new(10, vec![]), 16, 6);
        check(&gen::complete(5), 16, 7);
        check(&Graph::from_pairs(4, &[(0, 0), (1, 2), (2, 1)]), 16, 8);
    }

    #[test]
    fn boosting_accepts_first_clean_instance() {
        // Expanders succeed instantly: exactly one attempt, no clean-up.
        let g = gen::random_regular(2000, 8, 3);
        let params = Params::for_n(g.n());
        let forest = ParentForest::new(g.n());
        let s1 = Stage1Scratch::new(g.n());
        let tracker = CostTracker::new();
        let out = crate::stage1::reduce(g.edges(), &params, &forest, &s1, &tracker);
        let mut cur = CurrentGraph {
            edges: out.edges,
            active: out.active,
        };
        let (stats, attempts) = sample_solve_boosted(&mut cur, &forest, &params, 4, 7, &tracker);
        assert_eq!(attempts, 1);
        assert_eq!(stats.cleanup_edges, 0);
        forest.flatten(&tracker);
        assert!(same_partition(&forest.labels(&tracker), &components(&g)));
    }

    #[test]
    fn boosting_never_worse_than_single_and_stays_correct() {
        // A low-degree remnant where sampling can disconnect: boosting must
        // stay correct and never need clean-up more often than one attempt.
        for seed in 0..4u64 {
            let g = gen::cycle(3000);
            let mut params = Params::for_n(g.n()).with_seed(seed);
            params.extract_rounds = 0;
            params.reduce_rounds = 0;
            params.small_solve_threshold = 0; // force the sampling path
            let forest = ParentForest::new(g.n());
            let s1 = Stage1Scratch::new(g.n());
            let tracker = CostTracker::new();
            let out = crate::stage1::reduce(g.edges(), &params, &forest, &s1, &tracker);
            let mut cur = CurrentGraph {
                edges: out.edges,
                active: out.active,
            };
            let (stats, attempts) =
                sample_solve_boosted(&mut cur, &forest, &params, 5, seed, &tracker);
            assert!((1..=5).contains(&attempts));
            let _ = stats;
            forest.flatten(&tracker);
            assert!(same_partition(&forest.labels(&tracker), &components(&g)));
        }
    }

    #[test]
    fn small_threshold_path_solves_directly() {
        // Under the threshold everything goes straight to Theorem 2.
        let g = gen::gnp(200, 0.05, 9);
        let mut params = Params::for_n(g.n()).with_seed(9);
        params.small_solve_threshold = 10_000;
        let tracker = CostTracker::new();
        let (labels, _) = connectivity_known_gap(&g, 16, &params, &tracker);
        assert!(same_partition(&labels, &components(&g)));
    }
}
