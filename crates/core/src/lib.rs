#![warn(missing_docs)]

//! # parcc-core
//!
//! The paper's contribution: connected components in `O(m + n)` work and
//! `O(log(1/λ) + log log n)` time on an ARBITRARY CRCW PRAM, where `λ` is the
//! minimum spectral gap over the input's connected components (Farhadi, Liu,
//! Shi — SPAA 2024, arXiv:2312.02332).
//!
//! The pipeline (paper §3):
//!
//! 1. **Stage 1** ([`stage1`]) — contract the graph to `n/polylog n`
//!    vertices in `O(log log n)` time and linear work: the constant-shrink
//!    [`stage1::matching`](mod@stage1::matching), the filtering machinery
//!    ([`stage1::filter`](mod@stage1::filter), [`stage1::extract`](mod@stage1::extract)), and the top-level
//!    [`stage1::reduce`](mod@stage1::reduce).
//! 2. **Stage 2** ([`stage2`]) — raise every surviving vertex's degree to
//!    `poly(b)`: the skeleton graph ([`stage2::build`](mod@stage2::build)), DENSIFY (EXPAND-
//!    MAXLINK rounds from [`parcc_ltz`]) and INCREASE.
//! 3. **Stage 3** ([`stage3`]) — sample edges, solve connectivity on the
//!    sparsified graph via Theorem 2, and clean up (the `[KKT95]` corner
//!    case), giving [`stage3::connectivity_known_gap`] (paper Theorem 3).
//! 4. **Full algorithm** ([`full`]) — the unknown-λ search (paper §7):
//!    CONNECTIVITY/INTERWEAVE with doubling gap guesses, SPARSEBUILD, and
//!    REMAIN, giving [`full::connectivity`] (paper Theorem 1) — the
//!    crate's main entry point, also exported as [`connected_components`].

pub mod full;
pub mod index;
pub mod params;
pub mod solver;
pub mod stage1;
pub mod stage2;
pub mod stage3;

pub use full::{connectivity, ConnectivityStats, PhaseTrace};
pub use index::ComponentIndex;
pub use params::Params;
pub use solver::{KnownGapSolver, PaperSolver};

use parcc_graph::Graph;
use parcc_pram::cost::CostTracker;
use parcc_pram::edge::Vertex;

/// Compute the connected components of `g`: `labels[v]` is a canonical
/// representative of `v`'s component. Convenience wrapper around
/// [`full::connectivity`] with per-run telemetry discarded.
#[must_use]
pub fn connected_components(g: &Graph, params: &Params) -> Vec<Vertex> {
    let tracker = CostTracker::new();
    let (labels, _) = connectivity(g, params, &tracker);
    labels
}
