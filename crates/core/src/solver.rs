//! [`ComponentSolver`] adapters for the paper's own pipelines: the full
//! unknown-λ algorithm (Theorem 1) and the known-gap three-stage pipeline
//! (Theorem 3).

use crate::full::connectivity_sharded;
use crate::params::Params;
use crate::stage3::connectivity_known_gap;
use parcc_graph::incremental::BatchedUpdate;
use parcc_graph::solver::{ComponentSolver, SolveCtx, SolveReport, SolverCaps};
use parcc_graph::store::{shard_slices, GraphStore};
use parcc_graph::Graph;
use parcc_pram::edge::Edge;

/// The paper's main result (Theorem 1): `O(m + n)` work,
/// `O(log(1/λ) + log log n)` time, no gap knowledge needed.
pub struct PaperSolver;

impl PaperSolver {
    /// The shared pipeline: Stage 1 consumes the shard-chunked slices
    /// directly ([`connectivity_sharded`]); the flat entry passes a single
    /// shard.
    fn run(&self, n: usize, shards: &[&[Edge]], ctx: &SolveCtx) -> SolveReport {
        let mut solved_at = None;
        let mut remain_rounds = 0;
        let mut remain_edges = 0;
        let mut arena_peak = 0;
        let mut arena_groups = None;
        let report = SolveReport::measure(ctx, |tracker| {
            let params = Params::for_n(n).with_seed(ctx.seed);
            let (labels, stats) = connectivity_sharded(n, shards, &params, tracker);
            solved_at = stats.solved_at_phase;
            remain_rounds = stats.remain.rounds;
            remain_edges = stats.remain_edges;
            arena_peak = stats.arena_peak_bytes;
            arena_groups = stats.arena_groups.clone();
            let phases = stats.phases.len() as u64;
            (labels, Some(phases))
        });
        let report = report
            .note(
                "solved_at_phase",
                solved_at.map_or_else(|| "safety".into(), |p| p.to_string()),
            )
            .note("remain_edges", remain_edges)
            .note("remain_rounds", remain_rounds)
            .note("arena_peak_bytes", arena_peak);
        match arena_groups {
            Some(g) => report.note("arena_nodes", g),
            None => report,
        }
    }
}

impl ComponentSolver for PaperSolver {
    fn name(&self) -> &'static str {
        "paper"
    }
    fn description(&self) -> &'static str {
        "Farhadi-Liu-Shi [SPAA'24] (Theorem 1): O(m+n) work, O(log(1/λ) + loglog n) time"
    }
    fn caps(&self) -> SolverCaps {
        SolverCaps {
            deterministic: false,
            seeded: true,
            parallel: true,
            polylog_rounds: true,
            tracks_cost: true,
        }
    }
    fn solve(&self, g: &Graph, ctx: &SolveCtx) -> SolveReport {
        self.run(g.n(), &[g.edges()], ctx)
    }

    /// Shard-native: Stage 1 reads the store's shard slices in place — no
    /// flat [`Graph`] is ever materialized for sharded inputs.
    fn solve_store(&self, store: &dyn GraphStore, ctx: &SolveCtx) -> SolveReport {
        let slices = shard_slices(store);
        self.run(store.n(), &slices, ctx)
            .note("store_shards", store.shard_count())
    }
}

// Serve mode: the paper pipeline has no incremental structure, so it rides
// the flatten-and-resolve default (batches append as shards, each epoch
// re-solves — still shard-native through `solve_store`).
impl BatchedUpdate for PaperSolver {}

/// Theorem 3: the three-stage pipeline with a fixed gap parameter `b`
/// (defaulting to the phase-0 guess `b₀ ≈ log n`).
pub struct KnownGapSolver;

impl ComponentSolver for KnownGapSolver {
    fn name(&self) -> &'static str {
        "known-gap"
    }
    fn description(&self) -> &'static str {
        "stage-1/2/3 pipeline with fixed b≈log n [SPAA'24 Theorem 3]: O(m+n) work when λ ≥ 1/log n"
    }
    fn caps(&self) -> SolverCaps {
        SolverCaps {
            deterministic: false,
            seeded: true,
            parallel: true,
            polylog_rounds: true,
            tracks_cost: true,
        }
    }
    fn solve(&self, g: &Graph, ctx: &SolveCtx) -> SolveReport {
        let mut sampled = 0;
        let mut cleanup = 0;
        let report = SolveReport::measure(ctx, |tracker| {
            let params = Params::for_n(g.n()).with_seed(ctx.seed);
            let b = u64::from(params.b0);
            let (labels, stats) = connectivity_known_gap(g, b, &params, tracker);
            sampled = stats.sampled_edges;
            cleanup = stats.cleanup_edges;
            (labels, Some(stats.ltz.rounds))
        });
        report
            .note("sampled_edges", sampled)
            .note("cleanup_edges", cleanup)
    }
}

impl BatchedUpdate for KnownGapSolver {}

#[cfg(test)]
mod tests {
    use super::*;
    use parcc_graph::generators as gen;
    use parcc_graph::traverse::{components, same_partition};

    #[test]
    fn adapters_match_oracle() {
        let g = gen::mixture(2);
        let truth = components(&g);
        for s in [&PaperSolver as &dyn ComponentSolver, &KnownGapSolver] {
            let r = s.solve(&g, &SolveCtx::with_seed(3));
            assert!(same_partition(&r.labels, &truth), "{} wrong", s.name());
            assert!(r.cost.work > 0, "{} must charge the tracker", s.name());
            for &l in &r.labels {
                assert_eq!(r.labels[l as usize], l, "{}: non-canonical", s.name());
            }
        }
    }

    #[test]
    fn paper_notes_phase_telemetry() {
        let g = gen::random_regular(600, 8, 4);
        let r = PaperSolver.solve(&g, &SolveCtx::new());
        assert!(r.notes.iter().any(|(k, _)| *k == "solved_at_phase"));
    }
}
