//! The overall algorithm (paper §7): CONNECTIVITY with **unknown** spectral
//! gap — Theorem 1.
//!
//! After Stage 1, the algorithm guesses `λ ≥ b^{-ε}` with `b = b₀` and tries
//! the Stage-2 + Stage-3 machinery under a time budget of `O(log b)`. If the
//! sampled subgraph `H₁` fully contracts, the guess was good enough: the
//! `[KKT95]` REMAIN pass finishes the unsampled inter-component edges and we
//! are done. Otherwise the labeled digraph is reverted, the gap guess is
//! raised to `b^{growth}` (double-exponential progress, §3.4), and — to pay
//! for the next, more expensive phase — the current graph is shrunk further
//! by MATCHING rounds over the persistent `E_filter` edge set.
//!
//! Work-efficiency machinery from §7.3/§7.4: degree classification reads the
//! pre-sampled `H₂` instead of all of `E(G′)` (SPARSEBUILD), and the edges
//! of low-degree vertices are fetched through the [`AuxArray`] — a
//! padded-sorted adjacency index built once — so each phase costs
//! `O((m+n)/polylog)` instead of `O(m)`.
//!
//! Library guarantee: if every phase fails (impossible for the theory, but
//! the library promises correctness, not "w.h.p. correctness"), a final
//! Theorem-2 pass over the remaining current graph finishes the job.

use crate::params::Params;
use crate::stage1::reduce::{distinct_endpoints, reduce_sharded};
use crate::stage1::{filter::reverse, matching, Stage1Scratch};
use crate::stage2::{classify_degrees, increase_core, CurrentGraph, Stage2Scratch};
use parcc_graph::Graph;
use parcc_ltz::connect::{ltz_connectivity, LtzParams, LtzStats};
use parcc_ltz::round::LtzEngine;
use parcc_ltz::state::Budget;
use parcc_pram::arena::SolverArena;
use parcc_pram::cost::{ceil_log2, ceil_loglog, Cost, CostTracker};
use parcc_pram::crcw::Flags;
use parcc_pram::edge::{Edge, Vertex};
use parcc_pram::forest::ParentForest;
use parcc_pram::ops::alter_edges_with;
use parcc_pram::primitives::{padded_sort, retain_edges_with, simplify_edges_with};
use parcc_pram::rng::Stream;
use rayon::prelude::*;

/// The auxiliary adjacency array (paper §7.4.1, BUILDAUXILIARY): the current
/// graph's directed edges padded-sorted by first endpoint, built **once**
/// after Stage 1, so that per-phase extraction of a low-degree vertex's edges
/// costs output size, not `O(m)`.
#[derive(Debug)]
pub struct AuxArray {
    offsets: Vec<u32>,
    targets: Vec<Vertex>,
    /// Vertices with non-empty adjacency, i.e. `V(G′)`.
    verts: Vec<Vertex>,
}

impl AuxArray {
    /// Below this half-edge count the counting pass stays sequential.
    const PAR_CUTOFF: usize = 1 << 13;

    /// Build from the post-Stage-1 current edges (`O(m)` work, padded-sort
    /// depth). The per-vertex counting runs as chunked private histograms
    /// (the same contention-free pattern as `Graph::degrees`), and the
    /// `targets` column is filled during that same pass rather than by a
    /// second scan of the sorted half-edges.
    #[must_use]
    pub fn build(n: usize, edges: &[Edge], tracker: &CostTracker) -> Self {
        let mut directed: Vec<Edge> = Vec::with_capacity(edges.len() * 2);
        directed.extend(edges.iter().copied());
        directed.extend(edges.iter().map(|e| e.rev()));
        padded_sort(&mut directed, tracker);
        tracker.charge(directed.len() as u64 + n as u64, 2);
        let m2 = directed.len();
        let mut targets = vec![0 as Vertex; m2];
        // The parallel path pays one n-sized private histogram per chunk;
        // on a contracted current graph (n ≫ m2) that would dwarf the
        // counting itself, so it also requires the edges to outnumber the
        // vertices.
        let mut offsets: Vec<u32> = if m2 < Self::PAR_CUTOFF || n > m2 {
            let mut counts = vec![0u32; n + 1];
            for (e, t) in directed.iter().zip(&mut targets) {
                counts[e.u() as usize + 1] += 1;
                *t = e.v();
            }
            counts
        } else {
            let chunk = m2
                .div_ceil((rayon::current_num_threads() * 4).max(1))
                .max(Self::PAR_CUTOFF / 2);
            directed
                .par_chunks(chunk)
                .zip(targets.par_chunks_mut(chunk))
                .with_min_len(1)
                .map(|(es, ts)| {
                    let mut counts = vec![0u32; n + 1];
                    for (e, t) in es.iter().zip(ts) {
                        counts[e.u() as usize + 1] += 1;
                        *t = e.v();
                    }
                    counts
                })
                .reduce(
                    || vec![0u32; n + 1],
                    |mut a, b| {
                        for (x, y) in a.iter_mut().zip(b) {
                            *x += y;
                        }
                        a
                    },
                )
        };
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let verts: Vec<Vertex> = (0..n as u32)
            .into_par_iter()
            .filter(|&v| offsets[v as usize + 1] > offsets[v as usize])
            .collect();
        Self {
            offsets,
            targets,
            verts,
        }
    }

    /// The recorded neighbours of `u` (as of Stage-1 time).
    #[must_use]
    pub fn neighbors(&self, u: Vertex) -> &[Vertex] {
        &self.targets[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// `V(G′)`.
    #[must_use]
    pub fn verts(&self) -> &[Vertex] {
        &self.verts
    }

    /// Collect the **altered** edges of every vertex whose current root
    /// satisfies `emit_root` (paper §7.4.2/§7.4.3: the wake-up extraction;
    /// work ∝ scan of `V(G′)` + output). Loops are dropped.
    #[must_use]
    pub fn extract_altered(
        &self,
        forest: &ParentForest,
        emit_root: impl Fn(Vertex) -> bool + Sync,
        tracker: &CostTracker,
    ) -> Vec<Edge> {
        let out: Vec<Edge> = self
            .verts
            .par_iter()
            .flat_map_iter(|&u| {
                let ru = forest.find_root(u, tracker);
                let slice: &[Vertex] = if emit_root(ru) {
                    self.neighbors(u)
                } else {
                    &[]
                };
                slice.iter().filter_map(move |&w| {
                    let rw = forest.find_root(w, tracker);
                    (ru != rw).then_some(Edge::new(ru, rw))
                })
            })
            .collect();
        tracker.charge(self.verts.len() as u64 + out.len() as u64, 2);
        out
    }
}

/// Telemetry for a single INTERWEAVE phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseTrace {
    /// The gap guess `b` for this phase.
    pub b: u64,
    /// Live current-graph vertices entering the phase.
    pub active_before: usize,
    /// EXPAND-MAXLINK rounds spent on the `H₁` attempt.
    pub solve_rounds: u64,
    /// Did the attempt contract all of `H₁` (phase succeeded)?
    pub solved: bool,
    /// Simulated cost spent in this phase.
    pub cost: Cost,
}

/// Telemetry for a full CONNECTIVITY run.
#[derive(Debug, Clone, Default)]
pub struct ConnectivityStats {
    /// Cost of Stage 1.
    pub stage1: Cost,
    /// Per-phase traces.
    pub phases: Vec<PhaseTrace>,
    /// Phase index that solved (None ⇒ the final safety pass did).
    pub solved_at_phase: Option<u32>,
    /// Theorem-2 telemetry of the REMAIN pass.
    pub remain: LtzStats,
    /// Edges handled by REMAIN.
    pub remain_edges: usize,
    /// Total simulated cost.
    pub total: Cost,
    /// High-water bytes retained by the run's reusable buffer pool.
    pub arena_peak_bytes: u64,
    /// Per-node pool checkout summary (`n0:t=..,m=..|n1:..`) when more
    /// than one topology group served checkouts.
    pub arena_groups: Option<String>,
}

/// SPARSEBUILD(G′, H₂, b) (paper §7.3.1): classify degrees from `H₂`, pull
/// the low vertices' edges through the aux array, and union with `H₂`.
#[allow(clippy::too_many_arguments)]
fn sparse_build(
    aux: &AuxArray,
    h2_edges: &[Edge],
    live: &[Vertex],
    b: u64,
    params: &Params,
    s2: &Stage2Scratch,
    forest: &ParentForest,
    arena: &mut SolverArena,
    tracker: &CostTracker,
) -> Vec<Edge> {
    // Steps 1–3: high/low classification from the sampled subgraph.
    let _ = classify_degrees(
        h2_edges,
        live,
        b,
        params.hi_threshold_factor,
        params.sparsify_prob,
        s2,
        tracker,
    );
    // Step 4: E' = the altered edges of vertices with a low root.
    let low_edges = aux.extract_altered(forest, |r| !s2.high.get(r as usize), tracker);
    // Step 5: E' ∪ E(H₂).
    let mut skeleton = low_edges;
    skeleton.extend_from_slice(h2_edges);
    let out = simplify_edges_with(&skeleton, true, arena, tracker);
    arena.give_edges(skeleton);
    out
}

/// CONNECTIVITY(G) — Theorem 1. Returns component labels (a canonical root
/// per vertex) and the run telemetry.
#[must_use]
pub fn connectivity(
    g: &Graph,
    params: &Params,
    tracker: &CostTracker,
) -> (Vec<Vertex>, ConnectivityStats) {
    connectivity_sharded(g.n(), &[g.edges()], params, tracker)
}

/// CONNECTIVITY over shard-chunked edge slices — the `GraphStore`-native
/// entry point. Stage 1 assembles its working copy per shard
/// ([`reduce_sharded`]), so a sharded store solves without ever
/// materializing a flat [`Graph`]; with a single shard this is exactly
/// [`connectivity`].
#[must_use]
pub fn connectivity_sharded(
    n: usize,
    shards: &[&[Edge]],
    params: &Params,
    tracker: &CostTracker,
) -> (Vec<Vertex>, ConnectivityStats) {
    let forest = ParentForest::new(n);
    let s1 = Stage1Scratch::new(n);
    let s2 = Stage2Scratch::new(n);
    let mut arena = SolverArena::new();
    let mut stats = ConnectivityStats::default();
    let start = tracker.snapshot();

    // Step 2: Stage 1 preprocessing.
    let out = reduce_sharded(shards, params, &forest, &s1, tracker);
    let cur = CurrentGraph {
        edges: out.edges,
        active: out.active,
    };
    stats.stage1 = tracker.snapshot().since(start);

    // Step 3: the pre-sampled subgraphs H₁ (solve attempts) and H₂
    // (skeleton building), with independent randomness (§3.4).
    let h1_stream = Stream::new(params.seed, 0x111);
    let h2_stream = Stream::new(params.seed, 0x222);
    tracker.charge(cur.edges.len() as u64 * 2, 2);
    let h1_mask: Vec<bool> = (0..cur.edges.len() as u64)
        .into_par_iter()
        .map(|i| h1_stream.coin(i, params.sparsify_prob))
        .collect();
    let h1_edges: Vec<Edge> = cur
        .edges
        .par_iter()
        .zip(h1_mask.par_iter())
        .filter_map(|(&e, &keep)| keep.then_some(e))
        .collect();
    let mut h2_edges: Vec<Edge> = cur
        .edges
        .par_iter()
        .enumerate()
        .filter_map(|(i, &e)| h2_stream.coin(i as u64, params.sparsify_prob).then_some(e))
        .collect();

    // Step 4: the persistent filter edge set and the auxiliary array.
    let mut efilter = cur.edges.clone();
    tracker.charge(efilter.len() as u64, 1);
    let aux = AuxArray::build(n, &cur.edges, tracker);
    let mut live: Vec<Vertex> = cur.active.clone();
    let filter_stream = Stream::new(params.seed, 0xf17);

    let ltz_params = LtzParams {
        budget: Budget::for_n(n),
        ..LtzParams::for_n(n).with_seed(params.seed ^ 0x99)
    };

    // Step 5: the phase loop.
    let mut solved = false;
    for i in 0..params.max_phases {
        let phase_start = tracker.snapshot();
        let b = params.b_at_phase(i);
        tracker.charge(live.len() as u64, 1);
        live.retain(|&v| forest.is_root(v));
        let active_before = live.len();
        if cur.edges.is_empty() || active_before == 0 {
            solved = true;
            stats.solved_at_phase = Some(i);
            break;
        }

        // ---- Try the guess: INCREASE (sparse) + solve H₁ (Steps 2–4). ----
        let snapshot = forest.snapshot();
        tracker.charge(live.len() as u64, 1); // paper copies V(G′)'s parents
        let skeleton = sparse_build(
            &aux, &h2_edges, &live, b, params, &s2, &forest, &mut arena, tracker,
        );
        let _ = increase_core(
            &live,
            skeleton,
            b,
            &forest,
            params,
            &s2,
            params.seed ^ (0x1000 + i as u64),
            tracker,
        );
        // Fresh engine over (a copy of) H₁: construction ALTERs it to the
        // contracted digraph. Budgets: 20·log b EXPAND-MAXLINK rounds plus
        // the bounded Theorem-2 tail.
        let mut engine = LtzEngine::new(
            n,
            h1_edges.clone(),
            &forest,
            Budget::for_n(n),
            params.seed ^ (0x2000 + i as u64),
            tracker,
        );
        let round_budget = params.densify_rounds(b) + params.bounded_solve_rounds;
        let mut solve_rounds = 0;
        while !engine.is_done() && solve_rounds < round_budget {
            engine.step(&forest, tracker);
            solve_rounds += 1;
        }
        let attempt_done = engine.is_done() && i >= params.force_phase_failures;
        drop(engine);

        if attempt_done {
            // ---- REMAIN (Step 4 / §7.1): finish the unsampled edges. ----
            let mut eremain: Vec<Edge> = cur
                .edges
                .par_iter()
                .zip(h1_mask.par_iter())
                .filter_map(|(&e, &in_h1)| (!in_h1).then_some(e))
                .collect();
            tracker.charge(cur.edges.len() as u64, 1);
            alter_edges_with(&forest, &mut eremain, true, &mut arena, tracker);
            let simplified = simplify_edges_with(&eremain, true, &mut arena, tracker);
            arena.give_edges(eremain);
            let eremain = simplified;
            stats.remain_edges = eremain.len();
            stats.remain = ltz_connectivity(eremain, &forest, ltz_params, tracker);
            solved = true;
            stats.solved_at_phase = Some(i);
            stats.phases.push(PhaseTrace {
                b,
                active_before,
                solve_rounds,
                solved: true,
                cost: tracker.snapshot().since(phase_start),
            });
            break;
        }

        // ---- Step 5: wrong guess — revert the try. ----
        forest.restore(&snapshot);
        tracker.charge(live.len() as u64, 1);

        // ---- Step 6: shrink E_filter with MATCHING rounds. ----
        let next_b = params.b_at_phase(i + 1);
        let rounds = 4 + 2 * ceil_log2(next_b.min(1 << 40));
        let mut hooked_all: Vec<Vertex> = Vec::new();
        for r in 0..rounds {
            if efilter.is_empty() {
                break;
            }
            let tag = s1.next_tag();
            let hooked = matching(
                &mut efilter,
                &forest,
                &s1,
                filter_stream.substream((i as u64) << 16 | r),
                tag,
                tracker,
            );
            hooked_all.extend_from_slice(&hooked);
            forest.shortcut_set(&hooked, tracker);
            alter_edges_with(&forest, &mut efilter, true, &mut arena, tracker);
            let del = filter_stream.substream(0xdead_0000 | (i as u64) << 8 | r);
            retain_edges_with(
                &mut efilter,
                |&ed| !del.coin(ed.0, params.filter_delete_prob),
                &mut arena,
                tracker,
            );
        }

        // ---- Step 7: shortcuts flatten what the matchings built. ----
        let vfilter = distinct_endpoints(&efilter, &s1, tracker);
        let sweeps = 2 + i as u64 + ceil_loglog(n.max(4) as u64);
        for _ in 0..sweeps {
            forest.shortcut_set(&hooked_all, tracker);
            forest.shortcut_set(&vfilter, tracker);
        }

        // ---- Step 8: E' = edges of vertices outside V(E_filter). ----
        let in_vfilter = Flags::new(n);
        tracker.charge(vfilter.len() as u64, 1);
        vfilter.par_iter().for_each(|&v| in_vfilter.set(v as usize));
        let mut e_extra = aux.extract_altered(&forest, |r| !in_vfilter.get(r as usize), tracker);

        // ---- Step 9: contract E' with MATCHING rounds. ----
        for r in 0..rounds {
            if e_extra.is_empty() {
                break;
            }
            let tag = s1.next_tag();
            let hooked = matching(
                &mut e_extra,
                &forest,
                &s1,
                filter_stream.substream(0xe0000 | (i as u64) << 8 | r),
                tag,
                tracker,
            );
            forest.shortcut_set(&hooked, tracker);
            alter_edges_with(&forest, &mut e_extra, true, &mut arena, tracker);
        }

        // ---- Step 10: REVERSE(V(E_filter), E(H₂)). ----
        reverse(&vfilter, &mut h2_edges, &forest, tracker);

        stats.phases.push(PhaseTrace {
            b,
            active_before,
            solve_rounds,
            solved: false,
            cost: tracker.snapshot().since(phase_start),
        });
    }

    if !solved {
        // Library safety pass (DESIGN.md §5): all phases failed — finish the
        // remnant current graph directly with Theorem 2.
        let mut remnant = cur.edges.clone();
        alter_edges_with(&forest, &mut remnant, true, &mut arena, tracker);
        let remnant = simplify_edges_with(&remnant, true, &mut arena, tracker);
        stats.remain_edges = remnant.len();
        stats.remain = ltz_connectivity(remnant, &forest, ltz_params, tracker);
    }

    // Step 6 of CONNECTIVITY + final flatten for clean labels.
    forest.flatten(tracker);
    let labels = forest.labels(tracker);
    stats.total = tracker.snapshot().since(start);
    stats.arena_peak_bytes = arena.stats().peak_bytes;
    stats.arena_groups = arena.group_summary();
    (labels, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcc_graph::generators as gen;
    use parcc_graph::traverse::{components, same_partition};

    fn check(g: &Graph, seed: u64) -> ConnectivityStats {
        let params = Params::for_n(g.n()).with_seed(seed);
        let tracker = CostTracker::new();
        let (labels, stats) = connectivity(g, &params, &tracker);
        assert!(
            same_partition(&labels, &components(g)),
            "wrong partition on n={} m={}",
            g.n(),
            g.m()
        );
        stats
    }

    #[test]
    fn correct_on_standard_families() {
        for (g, seed) in [
            (gen::path(2000), 1u64),
            (gen::cycle(1500), 2),
            (gen::complete(60), 3),
            (gen::grid2d(30, 30, false), 4),
            (gen::hypercube(10), 5),
            (gen::random_regular(2000, 8, 6), 6),
            (gen::gnp(2500, 0.004, 7), 7),
        ] {
            check(&g, seed);
        }
    }

    #[test]
    fn correct_on_messy_inputs() {
        check(&gen::mixture(3), 1);
        check(&gen::expander_union(4, 300, 6, 2), 2);
        check(&gen::with_isolated(&gen::barbell(30, 3), 10), 3);
        check(&Graph::from_pairs(5, &[(0, 0), (1, 2), (2, 1), (3, 4)]), 4);
        check(&Graph::new(0, vec![]), 5);
        check(&Graph::new(7, vec![]), 6);
    }

    #[test]
    fn expanders_solve_in_an_early_phase() {
        let g = gen::random_regular(6000, 8, 9);
        let stats = check(&g, 11);
        let solved = stats.solved_at_phase.expect("must solve in a phase");
        assert!(solved <= 2, "expander should solve early, got {solved}");
    }

    #[test]
    fn aux_array_roundtrip() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 3)];
        let tracker = CostTracker::new();
        let aux = AuxArray::build(4, &edges, &tracker);
        assert_eq!(aux.verts(), &[0, 1, 2, 3]);
        let mut n0: Vec<u32> = aux.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 3]);
        assert_eq!(aux.neighbors(2), &[1]);
    }

    #[test]
    fn aux_extract_altered_filters_and_alters() {
        let edges = vec![Edge::new(0, 1), Edge::new(2, 3)];
        let tracker = CostTracker::new();
        let aux = AuxArray::build(4, &edges, &tracker);
        let forest = ParentForest::new(4);
        forest.set_parent(1, 0); // (0,1) becomes a loop — dropped
        let out = aux.extract_altered(&forest, |r| r == 2 || r == 3, &tracker);
        let mut canon: Vec<Edge> = out.into_iter().map(Edge::canonical).collect();
        canon.sort_unstable();
        canon.dedup();
        assert_eq!(canon, vec![Edge::new(2, 3)]);
    }

    #[test]
    fn phase_costs_are_recorded() {
        let g = gen::cycle(3000);
        let stats = check(&g, 21);
        assert!(!stats.phases.is_empty());
        for p in &stats.phases {
            assert!(p.b >= 8);
            assert!(p.cost.work > 0);
        }
        assert!(stats.total.work > 0);
        assert!(stats.stage1.work > 0);
    }
}

#[cfg(test)]
mod phase_tests {
    use super::*;
    use crate::stage1::reduce::reduce;
    use parcc_graph::generators as gen;
    use parcc_graph::traverse::{components, same_partition};

    #[test]
    fn forced_phase_failures_exercise_revert_and_stay_correct() {
        for force in [1u32, 3] {
            let g = gen::cycle(3000);
            let mut params = Params::for_n(g.n());
            params.force_phase_failures = force;
            let tracker = CostTracker::new();
            let (labels, stats) = connectivity(&g, &params, &tracker);
            assert!(same_partition(&labels, &components(&g)));
            // The first `force` phases must be recorded as failures.
            let failed = stats.phases.iter().take_while(|p| !p.solved).count();
            assert!(
                failed >= force as usize || stats.solved_at_phase.is_none(),
                "expected ≥{force} failed phases, trace: {:?}",
                stats.phases.iter().map(|p| p.solved).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn efilter_shrinks_across_forced_failures() {
        let g = gen::cycle(4000);
        let mut params = Params::for_n(g.n());
        params.force_phase_failures = 3;
        let tracker = CostTracker::new();
        let (_, stats) = connectivity(&g, &params, &tracker);
        let lives: Vec<usize> = stats.phases.iter().map(|p| p.active_before).collect();
        assert!(lives.len() >= 2);
        for w in lives.windows(2) {
            assert!(
                w[1] <= w[0],
                "live vertices must shrink monotonically: {lives:?}"
            );
        }
        // And substantially so between the first failed guesses.
        if lives[0] > 50 {
            assert!(
                lives[1] < lives[0] / 2,
                "E_filter rounds should shrink the graph geometrically: {lives:?}"
            );
        }
    }

    #[test]
    fn zero_phases_falls_back_to_safety_pass() {
        let g = gen::gnp(800, 0.004, 5);
        let mut params = Params::for_n(g.n());
        params.max_phases = 0;
        let tracker = CostTracker::new();
        let (labels, stats) = connectivity(&g, &params, &tracker);
        assert!(same_partition(&labels, &components(&g)));
        assert!(stats.solved_at_phase.is_none());
        assert!(stats.phases.is_empty());
    }

    #[test]
    fn sparse_build_produces_component_safe_skeleton() {
        // SPARSEBUILD output edges must connect co-component roots only.
        let g = gen::mixture(21);
        let n = g.n();
        let forest = ParentForest::new(n);
        let s1 = Stage1Scratch::new(n);
        let s2 = Stage2Scratch::new(n);
        let tracker = CostTracker::new();
        let params = Params::for_n(n);
        let out = reduce(g.edges(), &params, &forest, &s1, &tracker);
        let aux = AuxArray::build(n, &out.edges, &tracker);
        let h2: Vec<Edge> = out
            .edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 7 == 0)
            .map(|(_, &e)| e)
            .collect();
        let mut arena = SolverArena::new();
        let skeleton = sparse_build(
            &aux,
            &h2,
            &out.active,
            16,
            &params,
            &s2,
            &forest,
            &mut arena,
            &tracker,
        );
        let truth = components(&g);
        for e in &skeleton {
            assert_eq!(
                truth[e.u() as usize],
                truth[e.v() as usize],
                "skeleton edge crosses components"
            );
            assert!(!e.is_loop());
        }
    }
}
