//! Tunable parameters: the practical stand-ins for the paper's asymptotic
//! constants (DESIGN.md §2).
//!
//! The paper's constants — `b = (log n)^100`, hash tables of size `b^9`,
//! edge deletion w.p. `10^-4`, `10^6 log log n` rounds — exist to make union
//! bounds close at astronomically large `n`; the authors note "We did not
//! optimize the constants." Every such constant is a field here, with
//! defaults chosen so the asymptotic regime is visible at benchmarkable
//! sizes. The *structure* of every algorithm is untouched.

use parcc_pram::cost::ceil_log2;

/// Tuning knobs for the whole pipeline. Construct with [`Params::for_n`].
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Master seed; every random decision derives from it.
    pub seed: u64,
    // ---- Stage 1 -------------------------------------------------------
    /// Per-round edge deletion probability in FILTER (paper: `10^-4`).
    pub filter_delete_prob: f64,
    /// `k` for EXTRACT's inner/outer loops (paper: `Θ(log log log n)`).
    pub extract_rounds: u32,
    /// `k` for REDUCE's FILTER/MATCHING loops (paper: `10^6 log log n`).
    pub reduce_rounds: u32,
    // ---- Stage 2 -------------------------------------------------------
    /// Initial degree target `b` (paper: `(log n)^100`, practical `~log n`).
    pub b0: u32,
    /// High-degree threshold as a multiple of `b` (paper: `b^8` occupancy).
    pub hi_threshold_factor: u32,
    /// Sampling probability for high–high skeleton edges and for `H', H''`
    /// (paper: `1/(log n)^3` and `1/(log n)^7`).
    pub sparsify_prob: f64,
    /// EXPAND-MAXLINK rounds in DENSIFY, as a multiple of `log2 b`
    /// (paper: `20 log b`).
    pub densify_rounds_per_log_b: u32,
    /// Round budget multiplier for the bounded Theorem-2 call inside
    /// DENSIFY/INTERWEAVE (paper: `104 log log n`).
    pub bounded_solve_rounds: u64,
    // ---- Stage 3 / full ------------------------------------------------
    /// Below this vertex count SAMPLESOLVE solves directly (paper: `n^0.1`).
    pub small_solve_threshold: usize,
    /// Per-phase growth of the gap guess: `b ← b^growth` (paper: `1.1`).
    pub b_growth: f64,
    /// Maximum number of INTERWEAVE phases (paper: `10 log log n`).
    pub max_phases: u32,
    /// Testing/ablation aid: treat the first `k` phases as failed regardless
    /// of the solve outcome, exercising the guess-fail → revert → E_filter
    /// shrink machinery (§7.1 Steps 5–10), which at benchmarkable scales
    /// never triggers organically (see EXPERIMENTS.md E10). Default 0.
    pub force_phase_failures: u32,
}

impl Params {
    /// Defaults for an `n`-vertex input (DESIGN.md §2 table).
    #[must_use]
    pub fn for_n(n: usize) -> Self {
        let log_n = ceil_log2(n.max(4) as u64) as u32;
        let loglog = ceil_log2(log_n.max(2) as u64) as u32;
        Params {
            seed: 0x5EED,
            filter_delete_prob: 0.02,
            extract_rounds: 2,
            reduce_rounds: 3 + loglog,
            b0: log_n.max(8),
            hi_threshold_factor: 8,
            sparsify_prob: 1.0 / (log_n.max(2) as f64),
            densify_rounds_per_log_b: 3,
            bounded_solve_rounds: 8 * (loglog as u64 + 2),
            small_solve_threshold: 64.max(n / 256),
            b_growth: 1.5,
            max_phases: 10,
            force_phase_failures: 0,
        }
    }

    /// Same parameters with a different master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The gap guess at phase `i`: `b_i = b0^(growth^i)`, saturating.
    #[must_use]
    pub fn b_at_phase(&self, i: u32) -> u64 {
        let exp = self.b_growth.powi(i as i32);
        let b = (self.b0 as f64).powf(exp);
        if !b.is_finite() || b > 1e18 {
            u64::MAX
        } else {
            b as u64
        }
    }

    /// DENSIFY's EXPAND-MAXLINK round budget for gap guess `b`.
    #[must_use]
    pub fn densify_rounds(&self, b: u64) -> u64 {
        self.densify_rounds_per_log_b as u64 * ceil_log2(b.max(2)) + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_scale_with_n() {
        let small = Params::for_n(1_000);
        let large = Params::for_n(1_000_000);
        assert!(large.b0 >= small.b0);
        assert!(large.sparsify_prob <= small.sparsify_prob);
        assert!(large.reduce_rounds >= small.reduce_rounds);
    }

    #[test]
    fn b_grows_doubly_exponentially() {
        let p = Params::for_n(1 << 20);
        let b0 = p.b_at_phase(0);
        let b1 = p.b_at_phase(1);
        let b2 = p.b_at_phase(2);
        assert_eq!(b0, p.b0 as u64);
        assert!(b1 > b0);
        // growth of exponent: log b2 / log b1 ≈ growth
        let r = (b2 as f64).ln() / (b1 as f64).ln();
        assert!((r - p.b_growth).abs() < 0.35, "r={r}");
        // Saturation instead of overflow.
        assert_eq!(p.b_at_phase(60), u64::MAX);
    }

    #[test]
    fn densify_rounds_logarithmic_in_b() {
        let p = Params::for_n(4096);
        assert!(p.densify_rounds(16) < p.densify_rounds(1 << 16));
    }

    #[test]
    fn tiny_n_is_sane() {
        let p = Params::for_n(1);
        assert!(p.b0 >= 8);
        assert!(p.sparsify_prob > 0.0 && p.sparsify_prob <= 1.0);
    }
}
