//! Stage 2 (paper §5): increase the minimum degree of the current graph to
//! `poly(b)` in `O(log b)` depth and sub-linear work.
//!
//! * [`build`](mod@build) — BUILD(V, E, b): the skeleton graph (§5.1) and the high/low
//!   degree classifier shared with SPARSEBUILD (§7.3).
//! * [`densify`](mod@densify) — DENSIFY(H, b): EXPAND-MAXLINK rounds on the skeleton
//!   (§5.2), producing the close graph `E_close`.
//! * [`increase`](mod@increase) — INCREASE(V, E, b): heads absorb their neighbourhoods and
//!   a leader round mops up (§5.3), leaving every surviving root with
//!   current-graph degree ≥ b (Lemma 5.25).

pub mod build;
pub mod densify;
pub mod increase;

pub use build::{build_skeleton, classify_degrees, Skeleton, Stage2Scratch};
pub use densify::{densify, DensifyOutcome};
pub use increase::{increase, increase_core, IncreaseOutcome};

use parcc_pram::edge::{Edge, Vertex};

/// The evolving current graph: the altered edge multiset plus its vertex
/// set (roots with adjacent edges). After Stage 2 the edge set retains
/// self-loops — they carry the degrees and lazy-walk spectral gaps of
/// contracted regions (paper §5.3 footnote and §6).
#[derive(Debug, Clone)]
pub struct CurrentGraph {
    /// Altered edges; both ends roots. Loop-free after Stage 1, loops kept
    /// from Stage 2 on.
    pub edges: Vec<Edge>,
    /// Distinct endpoints.
    pub active: Vec<Vertex>,
}
