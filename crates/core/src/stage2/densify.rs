//! DENSIFY(H, b) (paper §5.2): run EXPAND-MAXLINK on the skeleton for
//! `O(log b)` rounds — shrinking every skeleton shortest path to length ≤ 2
//! (Lemma 5.17) — then finish contracting the close graph with a bounded
//! Theorem-2 call and return `E_close`, the current-graph edge multiset
//! (altered skeleton edges plus all added edges from the hash tables).

use crate::params::Params;
use parcc_ltz::connect::ltz_bounded;
use parcc_ltz::round::LtzEngine;
use parcc_ltz::state::Budget;
use parcc_pram::cost::CostTracker;
use parcc_pram::edge::Edge;
use parcc_pram::forest::ParentForest;
use parcc_pram::ops::alter_edges;

/// Output of DENSIFY.
#[derive(Debug)]
pub struct DensifyOutcome {
    /// `E_close`: altered skeleton edges + added edges, loop-free.
    pub eclose: Vec<Edge>,
    /// EXPAND-MAXLINK rounds actually executed.
    pub rounds: u64,
    /// Did the bounded Theorem-2 pass finish contracting the close graph?
    pub solve_done: bool,
}

/// Run DENSIFY on the skeleton edge set, contracting into `forest`.
#[must_use]
pub fn densify(
    skeleton_edges: Vec<Edge>,
    b: u64,
    forest: &ParentForest,
    params: &Params,
    seed: u64,
    tracker: &CostTracker,
) -> DensifyOutcome {
    let n = forest.len();
    let budget = Budget::for_n(n);
    // Step 1: R = Θ(log b) rounds of EXPAND-MAXLINK.
    let mut engine = LtzEngine::new(n, skeleton_edges, forest, budget, seed, tracker);
    let budget_rounds = params.densify_rounds(b);
    let mut rounds = 0;
    while rounds < budget_rounds && !engine.is_done() {
        engine.step(forest, tracker);
        rounds += 1;
    }
    // Step 3: a few SHORTCUT + ALTER passes flatten what the rounds built.
    for _ in 0..3 {
        forest.shortcut_set(&engine.active, tracker);
        alter_edges(forest, &mut engine.edges, true, tracker);
        engine.st.alter_tables(&engine.active, forest, tracker);
    }
    // Step 4: materialize E_close.
    let eclose = engine.export_current_edges(tracker);
    // Step 5: bounded Theorem 2 on (V(E_close), E_close).
    let (solve_done, _) = ltz_bounded(
        eclose.clone(),
        forest,
        budget,
        params.bounded_solve_rounds,
        seed ^ 0xd5,
        tracker,
    );
    // Step 6: ALTER(E_close).
    let mut eclose = eclose;
    alter_edges(forest, &mut eclose, true, tracker);
    DensifyOutcome {
        eclose,
        rounds,
        solve_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcc_graph::generators as gen;
    use parcc_graph::traverse::components;

    fn run(gedges: Vec<Edge>, n: usize, b: u64) -> (ParentForest, DensifyOutcome) {
        let forest = ParentForest::new(n);
        let tracker = CostTracker::new();
        let params = Params::for_n(n);
        let out = densify(gedges, b, &forest, &params, 5, &tracker);
        (forest, out)
    }

    #[test]
    fn contracts_small_components_fully() {
        // Skeleton = union of triangles: each must land in one tree.
        let g = parcc_graph::Graph::disjoint_union(&[
            gen::complete(3),
            gen::complete(3),
            gen::complete(3),
        ]);
        let (forest, out) = run(g.edges().to_vec(), g.n(), 16);
        assert!(out.solve_done);
        let tr = CostTracker::new();
        for base in [0u32, 3, 6] {
            let r = forest.find_root(base, &tr);
            assert_eq!(forest.find_root(base + 1, &tr), r);
            assert_eq!(forest.find_root(base + 2, &tr), r);
        }
        assert_ne!(forest.find_root(0, &tr), forest.find_root(3, &tr));
    }

    #[test]
    fn eclose_respects_components() {
        let g = gen::expander_union(3, 80, 4, 7);
        let truth = components(&g);
        let (forest, out) = run(g.edges().to_vec(), g.n(), 16);
        let tr = CostTracker::new();
        for e in &out.eclose {
            assert_eq!(
                truth[forest.find_root(e.u(), &tr) as usize],
                truth[forest.find_root(e.v(), &tr) as usize],
                "E_close edge crosses true components"
            );
        }
    }

    #[test]
    fn empty_skeleton() {
        let (forest, out) = run(vec![], 5, 16);
        assert!(out.eclose.is_empty());
        assert!(out.solve_done);
        assert_eq!(forest.root_count(), 5);
    }

    #[test]
    fn rounds_respect_budget() {
        let g = gen::cycle(4096);
        let n = g.n();
        let forest = ParentForest::new(n);
        let tracker = CostTracker::new();
        let params = Params::for_n(n);
        let out = densify(g.edges().to_vec(), 16, &forest, &params, 1, &tracker);
        assert!(out.rounds <= params.densify_rounds(16));
    }
}
