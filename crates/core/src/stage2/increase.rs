//! INCREASE(V, E, b) (paper §5.3): raise the degree of every surviving root
//! of the current graph to ≥ `b`.
//!
//! After DENSIFY, vertices re-point at their tree roots (the paper's
//! `v.p^{(2R+1)}` replay — realized as a bounded root-chase, DESIGN.md §3),
//! trees are tallied, *heads* (≥ 2b children) absorb non-heads across
//! `E_close` edges, and a leader/non-leader coin round merges what remains.
//! Lemma 5.25: every vertex that is still a root afterwards has current-graph
//! degree ≥ b; Lemma 5.24: small skeleton components are completely finished
//! and can be ignored from here on.

use crate::params::Params;
use crate::stage1::reduce::distinct_endpoints;
use crate::stage1::Stage1Scratch;
use crate::stage2::build::Stage2Scratch;
use crate::stage2::densify::{densify, DensifyOutcome};
use parcc_pram::cost::{ceil_log2, CostTracker};
use parcc_pram::crcw::Flags;
use parcc_pram::edge::Edge;
use parcc_pram::forest::ParentForest;
use parcc_pram::ops::alter_edges;
use parcc_pram::rng::Stream;
use rayon::prelude::*;
use std::sync::atomic::Ordering;

use super::CurrentGraph;

/// Telemetry from one INCREASE call.
#[derive(Debug)]
pub struct IncreaseOutcome {
    /// DENSIFY's report.
    pub densify: DensifyOutcome,
    /// Number of heads (trees with ≥ 2b members).
    pub heads: usize,
}

/// Steps 2–9 of INCREASE over the given current-graph vertex set, *without*
/// the final `ALTER(E)` — the shared body of the dense (Theorem-3) path and
/// the work-efficient path of §7.3, where the expensive `ALTER(E(G'))` is
/// replaced by altering the small sampled subgraph instead.
#[allow(clippy::too_many_arguments)] // the paper's signature
pub fn increase_core(
    active: &[parcc_pram::edge::Vertex],
    skeleton_edges: Vec<Edge>,
    b: u64,
    forest: &ParentForest,
    params: &Params,
    s2: &Stage2Scratch,
    seed: u64,
    tracker: &CostTracker,
) -> IncreaseOutcome {
    // Step 2: DENSIFY the skeleton.
    let dens = densify(skeleton_edges, b, forest, params, seed, tracker);
    let eclose = &dens.eclose;

    // Steps 3–4: every current-graph vertex re-points at its tree root and
    // is tallied there (the paper's hash table H'(u); `fetch_add` computes
    // the same distinct-children count). Depth: the paper's O(R) replay.
    s2.clear_for(active, tracker);
    tracker.charge(active.len() as u64, params.densify_rounds(b));
    active.par_iter().for_each(|&v| {
        let u = forest.find_root(v, tracker);
        s2.counts[u as usize].fetch_add(1, Ordering::Relaxed);
        forest.set_parent(v, u);
    });

    // Step 5: heads have at least 2b tree members.
    tracker.charge(active.len() as u64, ceil_log2(b.max(2)));
    let heads = active
        .par_iter()
        .filter(|&&v| {
            let is_head = s2.counts[v as usize].load(Ordering::Relaxed) as u64 >= 2 * b;
            if is_head {
                s2.head.set(v as usize);
            }
            is_head
        })
        .count();

    // Step 6: non-head roots hook under adjacent head roots.
    tracker.charge(eclose.len() as u64, 1);
    eclose.par_iter().for_each(|e| {
        for (v, w) in [(e.u(), e.v()), (e.v(), e.u())] {
            if v != w
                && forest.is_root(v)
                && forest.is_root(w)
                && s2.head.get(v as usize)
                && !s2.head.get(w as usize)
            {
                forest.set_parent(w, v);
            }
        }
    });

    // Step 7: SHORTCUT(V).
    forest.shortcut_set(active, tracker);

    // Step 8: leader/non-leader merge (leaders at p = 1/2; a root hooks only
    // under a root of opposite leader polarity, so no cycles can form).
    let leader = Flags::new(forest.len());
    let coin = Stream::new(seed, 0x1ead);
    tracker.charge(active.len() as u64 + eclose.len() as u64, 2);
    active.par_iter().for_each(|&v| {
        if coin.coin(v as u64, 0.5) {
            leader.set(v as usize);
        }
    });
    eclose.par_iter().for_each(|e| {
        for (v, w) in [(e.u(), e.v()), (e.v(), e.u())] {
            if v != w
                && forest.is_root(v)
                && forest.is_root(w)
                && leader.get(v as usize)
                && !leader.get(w as usize)
            {
                forest.set_parent(w, forest.parent(v));
            }
        }
    });

    // Step 9: SHORTCUT(V).
    forest.shortcut_set(active, tracker);

    IncreaseOutcome {
        densify: dens,
        heads,
    }
}

/// Dense-path INCREASE: the core followed by the Step-10 `ALTER(E)` and a
/// refresh of the current vertex set.
#[allow(clippy::too_many_arguments)] // the paper's signature
pub fn increase(
    cur: &mut CurrentGraph,
    skeleton_edges: Vec<Edge>,
    b: u64,
    forest: &ParentForest,
    params: &Params,
    s1: &Stage1Scratch,
    s2: &Stage2Scratch,
    seed: u64,
    tracker: &CostTracker,
) -> IncreaseOutcome {
    let out = increase_core(
        &cur.active,
        skeleton_edges,
        b,
        forest,
        params,
        s2,
        seed,
        tracker,
    );
    // Step 10: ALTER(E) and refresh the current vertex set. Loops are
    // **kept** — the paper's §5.3/§6 current graph retains them: a
    // contracted region's internal edges become loops that carry its degree
    // (Lemma 5.25 counts them) and its lazy-walk spectral gap (§6: "Our edge
    // sampling in Stage 3 will operate on all edges including loops").
    alter_edges(forest, &mut cur.edges, false, tracker);
    cur.active = distinct_endpoints(&cur.edges, s1, tracker);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::reduce::reduce;
    use crate::stage2::build::build_skeleton;
    use parcc_graph::generators as gen;
    use parcc_graph::traverse::components;
    use parcc_graph::Graph;

    /// Stage 1 + dense BUILD + INCREASE on `g`; returns the forest and the
    /// final current graph.
    fn run_pipeline(g: &Graph, b: u64, seed: u64) -> (ParentForest, CurrentGraph) {
        let n = g.n();
        let forest = ParentForest::new(n);
        let s1 = Stage1Scratch::new(n);
        let s2 = Stage2Scratch::new(n);
        let tracker = CostTracker::new();
        // Weakened Stage 1 and DENSIFY budgets so INCREASE receives a live
        // remnant (otherwise the degree assertion would hold vacuously).
        let mut params = Params::for_n(n).with_seed(seed);
        params.extract_rounds = 0;
        params.reduce_rounds = 0;
        params.densify_rounds_per_log_b = 1;
        params.bounded_solve_rounds = 0;
        let out = reduce(g.edges(), &params, &forest, &s1, &tracker);
        let mut cur = CurrentGraph {
            edges: out.edges,
            active: out.active,
        };
        let sk = build_skeleton(
            &cur.edges,
            &cur.active,
            b,
            params.hi_threshold_factor,
            params.sparsify_prob,
            &s2,
            Stream::new(seed, 0xb11d),
            &tracker,
        );
        let _ = increase(
            &mut cur, sk.edges, b, &forest, &params, &s1, &s2, seed, &tracker,
        );
        (forest, cur)
    }

    fn degree_of_roots(cur: &CurrentGraph) -> std::collections::HashMap<u32, u64> {
        let mut deg = std::collections::HashMap::new();
        for e in &cur.edges {
            *deg.entry(e.u()).or_insert(0) += 1;
            if e.u() != e.v() {
                *deg.entry(e.v()).or_insert(0) += 1;
            }
        }
        deg
    }

    #[test]
    fn lemma_5_25_min_degree_reaches_b() {
        // A long cycle under weakened budgets leaves a live remnant; every
        // surviving root must then have degree ≥ b.
        let g = gen::cycle(1 << 14);
        let b = 16;
        let (_, cur) = run_pipeline(&g, b, 1);
        assert!(
            !cur.active.is_empty(),
            "workload fully contracted — test became vacuous; shrink budgets"
        );
        let deg = degree_of_roots(&cur);
        for (&v, &d) in &deg {
            assert!(
                d >= b,
                "root {v} has degree {d} < b={b} ({} active)",
                cur.active.len()
            );
        }
    }

    #[test]
    fn contraction_respects_components() {
        let g = gen::mixture(11);
        let truth = components(&g);
        let (forest, _) = run_pipeline(&g, 16, 2);
        let tr = CostTracker::new();
        for v in 0..g.n() as u32 {
            let r = forest.find_root(v, &tr);
            assert_eq!(truth[r as usize], truth[v as usize]);
        }
    }

    #[test]
    fn small_components_fully_finish_lemma_5_24() {
        // Lemma 5.24's post-condition verbatim: all edges adjacent to a
        // small component's vertices must be loops (the component is done;
        // its loops stay in the current graph carrying its degree).
        let parts: Vec<Graph> = (0..20).map(|_| gen::complete(5)).collect();
        let g = Graph::disjoint_union(&parts).permuted(5);
        let (forest, cur) = run_pipeline(&g, 16, 3);
        for e in &cur.edges {
            assert!(e.is_loop(), "non-loop edge {:?} survived", e.ends());
        }
        // And each clique is one tree.
        let truth = components(&g);
        let tr = CostTracker::new();
        for v in 0..g.n() as u32 {
            let r = forest.find_root(v, &tr);
            assert_eq!(truth[r as usize], truth[v as usize]);
        }
    }

    #[test]
    fn cycle_survives_with_degree_or_finishes() {
        // Cycles have tiny gap; INCREASE still must not split them, and any
        // surviving root must meet the degree bound or the component is done.
        let g = gen::cycle(3000);
        let b = 8;
        let (forest, cur) = run_pipeline(&g, b, 7);
        let tr = CostTracker::new();
        let r0 = forest.find_root(0, &tr);
        for v in 0..g.n() as u32 {
            assert_eq!(forest.find_root(v, &tr), r0, "cycle split at {v}");
        }
        let _ = cur;
    }
}
