//! BUILD(V, E, b) — the skeleton graph (paper §5.1).
//!
//! The skeleton `H` sub-samples the current graph while preserving the two
//! properties Stage 2 needs (Lemmas 5.4, 5.5): every component of `H` either
//! equals a component of the current graph exactly (small components are kept
//! verbatim — all their edges ride along with a low-degree vertex) or is
//! still large; and `|E(H)| ≤ (m+n)/polylog`.
//!
//! Degree classification uses the estimation subgraph: the current edges
//! themselves in the dense (Theorem-3) path, or the pre-sampled `H₂` in the
//! work-efficient path (§7.3, Lemma 7.4). Estimated degrees are tallied with
//! `fetch_add` counters — the CRCW hash-table occupancy tally of the paper
//! computes the same degree estimate; we charge the paper's `O(log b)`
//! counting depth (DESIGN.md §3).

use parcc_pram::cost::{ceil_log2, CostTracker};
use parcc_pram::crcw::Flags;
use parcc_pram::edge::{Edge, Vertex};
use parcc_pram::primitives::simplify_edges;
use parcc_pram::rng::Stream;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Reusable per-vertex counters/marks for Stage 2.
#[derive(Debug)]
pub struct Stage2Scratch {
    /// Degree / child tally cells.
    pub counts: Vec<AtomicU32>,
    /// High-degree marks (BUILD).
    pub high: Flags,
    /// Head marks (INCREASE Step 5).
    pub head: Flags,
}

impl Stage2Scratch {
    /// Scratch for an `n`-vertex digraph.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let mut counts = Vec::with_capacity(n);
        counts.resize_with(n, || AtomicU32::new(0));
        Self {
            counts,
            high: Flags::new(n),
            head: Flags::new(n),
        }
    }

    /// Zero the tally cells and marks for the given vertices.
    pub fn clear_for(&self, verts: &[Vertex], tracker: &CostTracker) {
        tracker.charge(verts.len() as u64, 1);
        verts.par_iter().for_each(|&v| {
            self.counts[v as usize].store(0, Ordering::Relaxed);
            self.high.unset(v as usize);
            self.head.unset(v as usize);
        });
    }
}

/// The skeleton graph plus classification telemetry.
#[derive(Debug)]
pub struct Skeleton {
    /// `E(H)`: deduplicated, loop-free skeleton edges (ends are roots).
    pub edges: Vec<Edge>,
    /// Number of vertices classified high.
    pub high_count: usize,
}

/// Classify the active roots as high/low degree using `est_edges` (sampled
/// from the current graph with probability `est_rate`), leaving the marks in
/// `scratch.high`. Threshold: estimated current-graph degree ≥ `hi_factor·b`.
#[allow(clippy::too_many_arguments)] // the paper's signature
pub fn classify_degrees(
    est_edges: &[Edge],
    active: &[Vertex],
    b: u64,
    hi_factor: u32,
    est_rate: f64,
    scratch: &Stage2Scratch,
    tracker: &CostTracker,
) -> usize {
    scratch.clear_for(active, tracker);
    // Tally sampled degrees (multiplicity degree, as in Lemma 7.4).
    tracker.charge(est_edges.len() as u64, 1);
    est_edges.par_iter().for_each(|e| {
        scratch.counts[e.u() as usize].fetch_add(1, Ordering::Relaxed);
        if !e.is_loop() {
            scratch.counts[e.v() as usize].fetch_add(1, Ordering::Relaxed);
        }
    });
    // The paper tallies hash-table occupancy with a binary tree: log-depth.
    let tau = ((hi_factor as f64) * (b as f64) * est_rate).max(1.0) as u32;
    tracker.charge(active.len() as u64, ceil_log2(tau.max(2) as u64));
    active
        .par_iter()
        .filter(|&&v| {
            let hi = scratch.counts[v as usize].load(Ordering::Relaxed) >= tau;
            if hi {
                scratch.high.set(v as usize);
            }
            hi
        })
        .count()
}

/// BUILD(V, E, b), dense path: classify by the current edges themselves,
/// keep every edge touching a low vertex, down-sample high–high edges with
/// probability `q`, and deduplicate.
#[must_use]
#[allow(clippy::too_many_arguments)] // the paper's signature
pub fn build_skeleton(
    cur_edges: &[Edge],
    active: &[Vertex],
    b: u64,
    hi_factor: u32,
    q: f64,
    scratch: &Stage2Scratch,
    stream: Stream,
    tracker: &CostTracker,
) -> Skeleton {
    let high_count = classify_degrees(cur_edges, active, b, hi_factor, 1.0, scratch, tracker);
    tracker.charge(cur_edges.len() as u64, 1);
    let kept: Vec<Edge> = cur_edges
        .par_iter()
        .enumerate()
        .filter_map(|(i, &e)| {
            let both_high = scratch.high.get(e.u() as usize) && scratch.high.get(e.v() as usize);
            if !both_high || stream.coin(i as u64, q) {
                Some(e)
            } else {
                None
            }
        })
        .collect();
    let edges = simplify_edges(&kept, true, tracker);
    Skeleton { edges, high_count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcc_graph::generators as gen;
    use parcc_graph::traverse::{component_count, components};
    use parcc_graph::Graph;

    fn active_of(g: &Graph) -> Vec<Vertex> {
        (0..g.n() as u32).collect()
    }

    #[test]
    fn classify_splits_by_degree() {
        // Star: center has huge degree, leaves degree 1.
        let g = gen::star(200);
        let scratch = Stage2Scratch::new(g.n());
        let tracker = CostTracker::new();
        let hc = classify_degrees(g.edges(), &active_of(&g), 8, 8, 1.0, &scratch, &tracker);
        assert_eq!(hc, 1);
        assert!(scratch.high.get(0));
        assert!(!scratch.high.get(1));
    }

    #[test]
    fn low_edges_always_kept() {
        // A path: every vertex is low ⇒ the skeleton is the whole path.
        let g = gen::path(100);
        let scratch = Stage2Scratch::new(g.n());
        let tracker = CostTracker::new();
        let sk = build_skeleton(
            g.edges(),
            &active_of(&g),
            8,
            8,
            0.05,
            &scratch,
            Stream::new(1, 1),
            &tracker,
        );
        assert_eq!(sk.high_count, 0);
        assert_eq!(sk.edges.len(), g.m());
    }

    #[test]
    fn high_high_edges_are_sampled() {
        // Complete graph with b tuned so all vertices are high.
        let g = gen::complete(120);
        let scratch = Stage2Scratch::new(g.n());
        let tracker = CostTracker::new();
        let sk = build_skeleton(
            g.edges(),
            &active_of(&g),
            4,
            8,
            0.1,
            &scratch,
            Stream::new(2, 2),
            &tracker,
        );
        assert_eq!(sk.high_count, 120);
        let frac = sk.edges.len() as f64 / g.m() as f64;
        assert!(frac < 0.2, "skeleton kept too much: {frac}");
        assert!(frac > 0.02, "skeleton kept too little: {frac}");
    }

    #[test]
    fn small_components_preserved_exactly_lemma_5_4() {
        // Tiny cliques (low degree) + one dense expander (high degree).
        let mut parts: Vec<Graph> = (0..10).map(|_| gen::complete(4)).collect();
        parts.push(gen::random_regular(400, 40, 3));
        let g = Graph::disjoint_union(&parts);
        let scratch = Stage2Scratch::new(g.n());
        let tracker = CostTracker::new();
        let sk = build_skeleton(
            g.edges(),
            &active_of(&g),
            4,
            4,
            0.3,
            &scratch,
            Stream::new(3, 3),
            &tracker,
        );
        let h = Graph::new(g.n(), sk.edges.clone());
        let ours = components(&h);
        // Every small-clique component must be preserved *exactly*.
        for base in (0..40).step_by(4) {
            for v in base..base + 4 {
                assert_eq!(ours[v], ours[base], "small component split at vertex {v}");
            }
        }
        // And H must not merge components (it is a subgraph).
        assert!(component_count(&h) >= component_count(&g));
    }

    #[test]
    fn skeleton_has_no_loops_or_duplicates() {
        let g = Graph::from_pairs(4, &[(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]);
        let scratch = Stage2Scratch::new(g.n());
        let tracker = CostTracker::new();
        let sk = build_skeleton(
            g.edges(),
            &active_of(&g),
            8,
            8,
            1.0,
            &scratch,
            Stream::new(4, 4),
            &tracker,
        );
        assert_eq!(sk.edges, vec![Edge::new(0, 1), Edge::new(1, 2)]);
    }

    #[test]
    fn estimation_rate_scales_threshold() {
        let g = gen::star(41);
        let sampled = g.edge_sampled(0.5, 7);
        let scratch = Stage2Scratch::new(g.n());
        let tracker = CostTracker::new();
        let hc = classify_degrees(
            sampled.edges(),
            &active_of(&g),
            8,
            4,
            0.5,
            &scratch,
            &tracker,
        );
        assert_eq!(hc, 1, "center should classify high through the sample");
    }
}
