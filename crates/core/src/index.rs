//! A query-friendly view over a connectivity result.
//!
//! [`connected_components`](crate::connected_components) returns raw labels;
//! downstream code usually wants the questions the paper's introduction
//! opens with — "mark each vertex with the index of the connected component
//! that it belongs to … test whether two vertices are in the same connected
//! component in constant time" (§2.1). [`ComponentIndex`] packages exactly
//! that: O(1) same-component tests, dense component ids, and sizes.

use crate::full::{connectivity, ConnectivityStats};
use crate::params::Params;
use parcc_graph::Graph;
use parcc_pram::cost::CostTracker;
use parcc_pram::edge::Vertex;

/// Immutable component index over a graph's vertices.
#[derive(Debug, Clone)]
pub struct ComponentIndex {
    /// Canonical root label per vertex (the paper's `v.p`).
    labels: Vec<Vertex>,
    /// Dense component id per vertex (`0..count`), in first-seen order.
    dense: Vec<u32>,
    /// Component sizes, indexed by dense id.
    sizes: Vec<usize>,
}

impl ComponentIndex {
    /// Run the paper's algorithm on `g` and build the index.
    #[must_use]
    pub fn build(g: &Graph, params: &Params) -> (Self, ConnectivityStats) {
        let tracker = CostTracker::new();
        let (labels, stats) = connectivity(g, params, &tracker);
        (Self::from_labels(labels), stats)
    }

    /// Build from precomputed canonical labels (each label must itself be
    /// labelled by itself).
    #[must_use]
    pub fn from_labels(labels: Vec<Vertex>) -> Self {
        let n = labels.len();
        let mut dense = vec![u32::MAX; n];
        let mut dense_of_root = vec![u32::MAX; n];
        let mut sizes = Vec::new();
        for v in 0..n {
            let r = labels[v] as usize;
            debug_assert_eq!(labels[r] as usize, r, "labels must be canonical");
            if dense_of_root[r] == u32::MAX {
                dense_of_root[r] = sizes.len() as u32;
                sizes.push(0);
            }
            dense[v] = dense_of_root[r];
            sizes[dense_of_root[r] as usize] += 1;
        }
        Self {
            labels,
            dense,
            sizes,
        }
    }

    /// Number of vertices indexed.
    #[must_use]
    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// Number of connected components.
    #[must_use]
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Are `u` and `v` in the same component? O(1).
    #[must_use]
    pub fn same_component(&self, u: Vertex, v: Vertex) -> bool {
        self.labels[u as usize] == self.labels[v as usize]
    }

    /// Dense component id of `v` (`0..count`).
    #[must_use]
    pub fn component_of(&self, v: Vertex) -> u32 {
        self.dense[v as usize]
    }

    /// Canonical root label of `v` (a vertex of the same component).
    #[must_use]
    pub fn label_of(&self, v: Vertex) -> Vertex {
        self.labels[v as usize]
    }

    /// Size of the component with dense id `c`.
    #[must_use]
    pub fn size_of(&self, c: u32) -> usize {
        self.sizes[c as usize]
    }

    /// All component sizes, by dense id.
    #[must_use]
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Size of the largest component (0 for an empty graph).
    #[must_use]
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// The raw canonical labels.
    #[must_use]
    pub fn labels(&self) -> &[Vertex] {
        &self.labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcc_graph::generators as gen;

    fn idx(g: &Graph) -> ComponentIndex {
        ComponentIndex::build(g, &Params::for_n(g.n())).0
    }

    #[test]
    fn basic_queries() {
        let g = Graph::from_pairs(6, &[(0, 1), (1, 2), (4, 5)]);
        let ix = idx(&g);
        assert_eq!(ix.n(), 6);
        assert_eq!(ix.count(), 3);
        assert!(ix.same_component(0, 2));
        assert!(!ix.same_component(0, 3));
        assert_eq!(ix.component_of(4), ix.component_of(5));
        assert_eq!(ix.size_of(ix.component_of(0)), 3);
        assert_eq!(ix.size_of(ix.component_of(3)), 1);
        assert_eq!(ix.largest(), 3);
        let total: usize = ix.sizes().iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn dense_ids_are_contiguous() {
        let g = gen::mixture(7);
        let ix = idx(&g);
        let max_id = (0..g.n() as u32).map(|v| ix.component_of(v)).max().unwrap();
        assert_eq!(max_id as usize + 1, ix.count());
    }

    #[test]
    fn labels_are_canonical_members() {
        let g = gen::expander_union(3, 100, 4, 5);
        let ix = idx(&g);
        for v in 0..g.n() as u32 {
            let l = ix.label_of(v);
            assert!(ix.same_component(v, l));
            assert_eq!(ix.label_of(l), l);
        }
    }

    #[test]
    fn empty_graph() {
        let ix = ComponentIndex::from_labels(vec![]);
        assert_eq!(ix.count(), 0);
        assert_eq!(ix.largest(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "canonical")]
    fn rejects_non_canonical_labels() {
        // 0 → 1 but 1 → 1: label 1 fine; label of 1 for vertex 0 means
        // labels[0] = 1, labels[1] = 0 is non-canonical.
        let _ = ComponentIndex::from_labels(vec![1, 0]);
    }
}
